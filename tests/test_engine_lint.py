"""The REP6xx engine self-lint and the static lock-order analyzer.

Every rule gets a firing example *and* a quiet twin — the twin encodes
what absolves the pattern (an epoch bump, a ``finally`` release, a
snapshot) so the rules stay anchored to the invariant, not the syntax.
The real engine tree must be clean, which is itself part of the
acceptance bar for this subsystem.
"""

import json
import textwrap

from repro.analysis import (
    analyze_lock_order,
    cycles_in_wait_edges,
    find_cycles,
    lint_engine,
    lint_source,
    to_sarif,
    verify_engine_invariants,
)
from repro.cli import main


def lint(source, path="mod.py"):
    return lint_source(textwrap.dedent(source), path=path, rel=path)


def codes(findings):
    return sorted({d.code for d in findings})


def scan_lockorder(source, name="mod"):
    """Analyze one module's source as its own engine tree."""
    import os
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        with open(os.path.join(tmp, f"{name}.py"), "w") as f:
            f.write(textwrap.dedent(source))
        return analyze_lock_order(tmp)


class TestRep601RawAttrsWrite:
    def test_write_without_epoch_bump_fires(self):
        findings = lint(
            """
            class Store:
                def poke(self, obj, value):
                    obj._attrs["Length"] = value
            """
        )
        assert codes(findings) == ["REP601"]
        assert findings[0].severity == "warning"

    def test_epoch_bump_absolves(self):
        findings = lint(
            """
            class Store:
                def poke(self, obj, value):
                    obj._attrs["Length"] = value
                    obj._mutation_epoch += 1
            """
        )
        assert findings == []

    def test_mutating_calls_fire(self):
        findings = lint(
            """
            def wipe(obj):
                obj._attrs.clear()

            def merge(obj, other):
                obj._attrs.update(other)
            """
        )
        assert [d.code for d in findings] == ["REP601", "REP601"]

    def test_pragma_suppresses(self):
        findings = lint(
            """
            def fresh_copy(obj, value):
                obj._attrs["Length"] = value  # lint: allow(REP601)
            """
        )
        assert findings == []


class TestRep602EventOutsideBus:
    def test_bare_event_construction_fires(self):
        findings = lint(
            """
            def notify():
                return Event("attribute_updated", None)
            """
        )
        assert codes(findings) == ["REP602"]

    def test_events_module_is_the_authority(self):
        findings = lint(
            """
            def notify():
                return Event("attribute_updated", None)
            """,
            path="engine/events.py",
        )
        assert findings == []


class TestRep603ReleaseNotInFinally:
    def test_release_outside_finally_fires(self):
        findings = lint(
            """
            class Table:
                def work(self):
                    self._mutex.acquire()
                    self.step()
                    self._mutex.release()
            """
        )
        assert codes(findings) == ["REP603"]
        assert findings[0].severity == "error"

    def test_finally_release_is_quiet(self):
        findings = lint(
            """
            class Table:
                def work(self):
                    self._mutex.acquire()
                    try:
                        self.step()
                    finally:
                        self._mutex.release()
            """
        )
        assert findings == []

    def test_with_statement_is_quiet(self):
        findings = lint(
            """
            class Table:
                def work(self):
                    with self._mutex:
                        self.step()
            """
        )
        assert findings == []


class TestRep604UnsnapshottedIteration:
    def test_bare_iteration_over_shared_dict_fires(self):
        findings = lint(
            """
            class Table:
                def drain(self):
                    for txn, entry in self._locks.items():
                        self.visit(txn, entry)
            """
        )
        assert codes(findings) == ["REP604"]

    def test_snapshot_absolves(self):
        findings = lint(
            """
            class Table:
                def drain(self):
                    for txn, entry in list(self._locks.items()):
                        self.visit(txn, entry)
            """
        )
        assert findings == []

    def test_mutex_held_iteration_is_quiet(self):
        findings = lint(
            """
            class Table:
                def drain(self):
                    with self._mutex:
                        for txn in self._locks:
                            self.visit(txn)
            """
        )
        assert findings == []


class TestRealTree:
    def test_engine_is_clean(self):
        result = lint_engine()
        assert result.diagnostics == []
        assert result.files_scanned > 50
        # The legacy raw-write sites are pragma-annotated, not rewritten.
        assert result.suppressed >= 4

    def test_lockorder_engine_has_no_cycles(self):
        report = analyze_lock_order()
        assert report.cycles == []
        assert report.reentrant == []
        names = set(report.locks)
        assert any(name.endswith("LockTable._mutex") for name in names)
        assert any(name.endswith("RaceSanitizer._mutex") for name in names)


class TestLockOrder:
    ABBA = """
        import threading
        import time

        A = threading.Lock()
        B = threading.Lock()

        def forward():
            with A:
                with B:
                    pass

        def backward():
            with B:
                with A:
                    pass

        def sleepy():
            with A:
                time.sleep(1.0)

        def twice():
            with A:
                A.acquire()
    """

    def test_seeded_inversion_fires_all_codes(self):
        report = scan_lockorder(self.ABBA, name="bad")
        held = {(e.held, e.acquired) for e in report.edges}
        assert ("bad.A", "bad.B") in held
        assert ("bad.B", "bad.A") in held
        assert report.cycles == [("bad.A", "bad.B")]
        assert [b.call for b in report.blocking] == ["time.sleep"]
        assert [r.lock for r in report.reentrant] == ["bad.A"]
        assert codes(report.diagnostics()) == ["REP610", "REP611", "REP612"]

    def test_condition_aliases_its_lock(self):
        report = scan_lockorder(
            """
            import threading

            class Table:
                def __init__(self):
                    self._mutex = threading.Lock()
                    self._cond = threading.Condition(self._mutex)

                def wait_turn(self):
                    with self._mutex:
                        self._cond.wait()
            """
        )
        # Condition.wait releases the aliased mutex: not a blocking call
        # under a lock, and no self-edge.
        assert report.blocking == []
        assert report.reentrant == []
        assert report.edges == []
        decls = report.locks
        cond = next(d for d in decls.values() if d.kind == "condition")
        assert cond.aliases is not None and cond.aliases.endswith("._mutex")

    def test_find_cycles_canonicalises_rotation(self):
        graph = {1: {2}, 2: {3}, 3: {1}, 4: {1}}
        assert find_cycles(graph) == [(1, 2, 3)]

    def test_cycles_in_wait_edges_matches_runtime_shape(self):
        assert cycles_in_wait_edges({(1, 2), (2, 3), (3, 1), (4, 1)}) == [
            (1, 2, 3)
        ]
        assert cycles_in_wait_edges({(1, 2), (2, 3)}) == []


class TestSarifGolden:
    def test_rep6xx_rules_are_in_the_catalog(self):
        sarif = to_sarif([])
        rules = {r["id"]: r for r in sarif["runs"][0]["tool"]["driver"]["rules"]}
        for code in ("REP601", "REP602", "REP603", "REP604",
                     "REP610", "REP611", "REP612"):
            assert code in rules
        assert rules["REP603"]["defaultConfiguration"]["level"] == "error"
        assert rules["REP612"]["defaultConfiguration"]["level"] == "error"
        assert rules["REP601"]["defaultConfiguration"]["level"] == "warning"
        assert rules["REP601"]["name"] == "raw-attrs-write-without-epoch"

    def test_engine_findings_serialise_with_locations(self):
        findings = lint(
            """
            def poke(obj, value):
                obj._attrs["Length"] = value
            """,
            path="src/repro/somewhere.py",
        )
        sarif = to_sarif(findings)
        result = sarif["runs"][0]["results"][0]
        assert result["ruleId"] == "REP601"
        assert result["level"] == "warning"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "src/repro/somewhere.py"
        assert location["region"]["startLine"] == 3


class TestCli:
    def test_engine_lint_clean_exits_zero(self, capsys):
        assert main(["lint", "--engine"]) == 0
        captured = capsys.readouterr()
        assert "0 errors" in captured.out
        assert "engine lint:" in captured.err

    def test_engine_lint_sarif_is_machine_readable(self, capsys):
        assert main(["lint", "--engine", "--format", "sarif"]) == 0
        sarif = json.loads(capsys.readouterr().out)
        assert sarif["runs"][0]["results"] == []

    def test_engine_lint_fails_on_seeded_tree(self, tmp_path, capsys):
        bad = tmp_path / "engine"
        bad.mkdir()
        (bad / "mod.py").write_text(textwrap.dedent(
            """
            class Table:
                def work(self):
                    self._mutex.acquire()
                    self.step()
                    self._mutex.release()
            """
        ))
        assert main([
            "lint", "--engine", "--engine-root", str(bad),
        ]) == 2
        assert "REP603" in capsys.readouterr().out

    def test_engine_lint_fail_on_never(self, tmp_path):
        bad = tmp_path / "engine"
        bad.mkdir()
        (bad / "mod.py").write_text(
            "class T:\n"
            "    def w(self):\n"
            "        self._mutex.acquire()\n"
            "        self.step()\n"
            "        self._mutex.release()\n"
        )
        assert main([
            "lint", "--engine", "--engine-root", str(bad),
            "--fail-on", "never",
        ]) == 0

    def test_lint_without_schema_or_engine_errors(self, capsys):
        assert main(["lint"]) == 1
        assert "needs a schema file" in capsys.readouterr().err

    def test_engine_verify_exits_zero(self, capsys):
        assert main(["lint", "--engine", "--verify"]) == 0
        out = capsys.readouterr().out
        assert "engine concurrency verification: ok" in out

    def test_race_wrapper_clean_command(self, capsys):
        assert main(["race", "--", "paper", "gate"]) == 0
        captured = capsys.readouterr()
        assert "race sanitizer:" in captured.err
        assert "0 candidate race(s)" in captured.err

    def test_race_wrapper_refuses_recursion(self, capsys):
        assert main(["race", "--", "race", "--", "paper", "gate"]) == 1
        assert "refusing" in capsys.readouterr().err


class TestVerifyHarness:
    def test_differential_harness_passes(self):
        report = verify_engine_invariants()
        assert report.ok
        assert len(report.checks) == 6
        assert "ok (6 checks)" in report.render()
