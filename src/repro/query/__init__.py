"""Query language: ``select … from … where …`` over classes and types.

>>> from repro.query import run_query
>>> result = run_query(db, "select Length from Interfaces where Width > 5")
>>> result.scalars()
[...]
"""

from .executor import QueryResult, execute_query, run_query
from .parser import QuerySpec, parse_query

__all__ = ["QueryResult", "QuerySpec", "execute_query", "parse_query", "run_query"]
