"""Tests for the engine layer: catalog, database, extents, queries, events."""

import pytest

from repro.engine import walk_tree
from repro.engine.query import (
    inheritors_of,
    relationships_of,
    root_of,
    transmitters_of,
    walk_subobjects,
)
from repro.errors import (
    DuplicateTypeError,
    QueryError,
    SchemaError,
    UnknownTypeError,
)
from tests.conftest import add_pins


class TestCatalog:
    def test_builtin_domains(self, gate_db):
        assert gate_db.catalog.domain("integer").validate(1) == 1
        assert gate_db.catalog.domain("I/O").validate("IN") == "IN"
        assert gate_db.catalog.has_domain("Point")

    def test_unknown_domain(self, gate_db):
        from repro.errors import UnknownDomainError

        with pytest.raises(UnknownDomainError):
            gate_db.catalog.domain("Voltage")

    def test_define_domain_and_duplicate(self, gate_db):
        from repro.core import EnumDomain

        gate_db.catalog.define_domain("Material", EnumDomain("Material", ["wood", "metal"]))
        assert gate_db.catalog.domain("Material").validate("wood") == "wood"
        with pytest.raises(DuplicateTypeError):
            gate_db.catalog.define_domain("Material", EnumDomain("M", ["x"]))

    def test_type_lookup_by_kind(self, gate_db):
        assert gate_db.catalog.object_type("GateInterface").name == "GateInterface"
        assert gate_db.catalog.relationship_type("WireType").name == "WireType"
        assert (
            gate_db.catalog.inheritance_type("AllOf_GateInterface").name
            == "AllOf_GateInterface"
        )

    def test_kind_mismatch_rejected(self, gate_db):
        with pytest.raises(UnknownTypeError):
            gate_db.catalog.object_type("WireType")
        with pytest.raises(UnknownTypeError):
            gate_db.catalog.relationship_type("GateInterface")
        with pytest.raises(UnknownTypeError):
            gate_db.catalog.inheritance_type("WireType")

    def test_duplicate_type_rejected(self, gate_db):
        with pytest.raises(DuplicateTypeError):
            gate_db.catalog.define_object_type("GateInterface")

    def test_kind_listings(self, gate_db):
        assert gate_db.catalog.object_type("Gate") in gate_db.catalog.object_types()
        names = [t.name for t in gate_db.catalog.relationship_types()]
        assert "WireType" in names and "AllOf_GateInterface" not in names
        assert [t.name for t in gate_db.catalog.inheritance_types()] == [
            "AllOf_GateInterface"
        ]

    def test_contains_and_len(self, gate_db):
        assert "Gate" in gate_db.catalog
        assert len(gate_db.catalog) == 7


class TestDatabaseObjects:
    def test_create_object_in_class(self, gate_db):
        iface = gate_db.create_object(
            "GateInterface", class_name="Interfaces", Length=40, Width=20
        )
        assert iface in gate_db.class_("Interfaces")
        assert gate_db.get(iface.surrogate) is iface

    def test_create_object_by_type_object(self, gate_db):
        iface = gate_db.create_object(gate_db.schema.gate_interface)
        assert iface.database is gate_db

    def test_class_type_conformance(self, gate_db):
        with pytest.raises(SchemaError):
            gate_db.create_object("Gate", class_name="Interfaces")

    def test_subtype_allowed_in_class(self, gate_db):
        # GateImplementation conforms to GateInterface (§4.1 subtype).
        impl = gate_db.create_object("GateImplementation", class_name="Interfaces")
        assert impl in gate_db.class_("Interfaces")

    def test_duplicate_class_rejected(self, gate_db):
        with pytest.raises(SchemaError):
            gate_db.create_class("Interfaces", "GateInterface")

    def test_unknown_class(self, gate_db):
        with pytest.raises(UnknownTypeError):
            gate_db.class_("Nope")

    def test_subobjects_are_tracked(self, gate_db):
        iface = gate_db.create_object("GateInterface")
        pin = iface.subclass("Pins").create(InOut="IN")
        assert gate_db.get(pin.surrogate) is pin

    def test_bind_through_facade_by_name(self, gate_db):
        iface = gate_db.create_object("GateInterface", Length=1, Width=2)
        impl = gate_db.create_object("GateImplementation")
        link = gate_db.bind(impl, iface, "AllOf_GateInterface")
        assert impl["Length"] == 1
        assert gate_db.get(link.surrogate) is link

    def test_delete_removes_from_registry_and_classes(self, gate_db):
        iface = gate_db.create_object("GateInterface", class_name="Interfaces")
        surrogate = iface.surrogate
        iface.delete()
        assert gate_db.get(surrogate) is None
        assert iface not in gate_db.class_("Interfaces")

    def test_add_to_multiple_classes(self, gate_db):
        gate_db.create_class("Favourites", "GateInterface")
        iface = gate_db.create_object("GateInterface", class_name="Interfaces")
        gate_db.add_to_class(iface, "Favourites")
        assert iface in gate_db.class_("Favourites")
        iface.delete()
        assert len(gate_db.class_("Favourites")) == 0

    def test_create_relationship_freestanding(self, gate_db):
        iface = gate_db.create_object("GateInterface")
        a = iface.subclass("Pins").create(InOut="IN")
        b = iface.subclass("Pins").create(InOut="OUT")
        wire = gate_db.create_relationship("WireType", {"Pin1": a, "Pin2": b})
        assert gate_db.get(wire.surrogate) is wire

    def test_create_relationship_requires_rel_type(self, gate_db):
        with pytest.raises(SchemaError):
            gate_db.create_relationship("GateInterface", {})

    def test_objects_of_type(self, gate_db):
        gate_db.create_object("GateInterface")
        gate_db.create_object("GateImplementation")
        with_subtypes = gate_db.objects_of_type("GateInterface")
        exact = gate_db.objects_of_type("GateInterface", include_subtypes=False)
        assert len(with_subtypes) == 2 and len(exact) == 1

    def test_count_and_repr(self, gate_db):
        gate_db.create_object("GateInterface")
        assert gate_db.count() == 1
        assert "gates" in repr(gate_db)


class TestSelect:
    def test_select_all(self, gate_db):
        for length in (10, 20, 30):
            gate_db.create_object(
                "GateInterface", class_name="Interfaces", Length=length, Width=1
            )
        assert len(gate_db.select("Interfaces")) == 3

    def test_select_with_expression(self, gate_db):
        for length in (10, 20, 30):
            gate_db.create_object(
                "GateInterface", class_name="Interfaces", Length=length, Width=1
            )
        hits = gate_db.select("Interfaces", "Length > 15")
        assert sorted(obj["Length"] for obj in hits) == [20, 30]

    def test_select_with_callable(self, gate_db):
        gate_db.create_object("GateInterface", class_name="Interfaces", Length=10, Width=1)
        hits = gate_db.select("Interfaces", lambda o: o["Length"] == 10)
        assert len(hits) == 1

    def test_select_from_iterable(self, gate_db):
        objs = [gate_db.create_object("GateInterface", Length=i, Width=1) for i in range(5)]
        hits = gate_db.select(objs, "Length >= 3")
        assert len(hits) == 2

    def test_select_on_subclass_counts(self, gate_db):
        iface = gate_db.create_object(
            "GateInterface", class_name="Interfaces", Length=1, Width=1
        )
        add_pins(iface, n_in=2, n_out=1)
        hits = gate_db.select("Interfaces", "count(Pins) = 3")
        assert hits == [iface]

    def test_bad_where_type(self, gate_db):
        with pytest.raises(QueryError):
            gate_db.select("Interfaces", 42)


class TestNavigation:
    def test_walk_tree(self, gate_db):
        gate = gate_db.create_object("Gate")
        sub = gate.subclass("SubGates").create(Function="AND")
        add_pins(sub)
        nodes = list(walk_tree(gate))
        assert gate in nodes and sub in nodes and len(nodes) == 5

    def test_walk_tree_with_relationships(self, gate_db):
        gate = gate_db.create_object("Gate")
        a = gate.subclass("Pins").create(InOut="IN")
        b = gate.subclass("Pins").create(InOut="OUT")
        wire = gate.subrel("Wires").create({"Pin1": a, "Pin2": b})
        nodes = list(walk_tree(gate, include_relationships=True))
        assert wire in nodes

    def test_walk_subobjects(self, gate_db):
        gate = gate_db.create_object("Gate")
        gate.subclass("Pins").create(InOut="IN")
        gate.subclass("SubGates").create(Function="OR")
        assert len(list(walk_subobjects(gate))) == 2

    def test_root_of(self, gate_db):
        gate = gate_db.create_object("Gate")
        sub = gate.subclass("SubGates").create()
        pin = sub.subclass("Pins").create(InOut="IN")
        assert root_of(pin) is gate
        assert root_of(gate) is gate

    def test_inheritors_and_transmitters(self, gate_db):
        iface = gate_db.create_object("GateInterface", Length=1, Width=1)
        impl = gate_db.create_object("GateImplementation", transmitter=iface)
        assert inheritors_of(iface) == [impl]
        assert transmitters_of(impl) == [iface]

    def test_relationships_of_excludes_links(self, gate_db):
        iface = gate_db.create_object("GateInterface", Length=1, Width=1)
        impl = gate_db.create_object("GateImplementation", transmitter=iface)
        a = iface.subclass("Pins").create(InOut="IN")
        b = iface.subclass("Pins").create(InOut="OUT")
        wire = gate_db.create_relationship("WireType", {"Pin1": a, "Pin2": b})
        assert relationships_of(a) == [wire]
        assert relationships_of(iface) == []  # the link does not count


class TestEvents:
    def test_attribute_update_event(self, gate_db):
        iface = gate_db.create_object("GateInterface")
        iface.set_attribute("Length", 5)
        updates = gate_db.events.events_of("attribute_updated")
        assert updates and updates[-1].attribute == "Length"
        assert updates[-1].new == 5 and updates[-1].subject is iface

    def test_subscription_and_unsubscribe(self, gate_db):
        seen = []
        sub = gate_db.events.subscribe("object_created", lambda e: seen.append(e))
        gate_db.create_object("GateInterface")
        assert len(seen) == 1
        gate_db.events.unsubscribe(sub)
        gate_db.create_object("GateInterface")
        assert len(seen) == 1

    def test_wildcard_subscription(self, gate_db):
        kinds = []
        gate_db.events.subscribe("*", lambda e: kinds.append(e.kind))
        iface = gate_db.create_object("GateInterface")
        iface.set_attribute("Length", 3)
        assert "object_created" in kinds and "attribute_updated" in kinds

    def test_bind_and_unbind_events(self, gate_db):
        iface = gate_db.create_object("GateInterface", Length=1, Width=1)
        impl = gate_db.create_object("GateImplementation", transmitter=iface)
        assert gate_db.events.events_of("inheritor_bound")
        impl.link_for(gate_db.schema.all_of_gate_interface).unbind()
        assert gate_db.events.events_of("inheritor_unbound")

    def test_history_limit(self):
        from repro.engine.events import EventBus

        bus = EventBus(record=True, history_limit=10)
        for i in range(25):
            bus.emit("tick", n=i)
        assert len(bus.history) == 10
        assert bus.history[-1].n == 24

    def test_event_attribute_error(self):
        from repro.engine.events import EventBus

        event = EventBus().emit("kind", subject=None, a=1)
        assert event.a == 1
        with pytest.raises(AttributeError):
            event.b
