"""Surrogate identity.

Section 3 of the paper: *"Automatically, any object has an attribute called
surrogate which allows a system-wide identification of the object and which
is managed by the system."*

A :class:`Surrogate` is an immutable, hashable token.  Surrogates are never
reused within one :class:`SurrogateGenerator`, independent of deletions, and
they order by creation time, which the version and lock managers rely on.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from typing import Iterator


@dataclass(frozen=True, order=True)
class Surrogate:
    """System-wide identifier of an object or relationship object.

    Parameters
    ----------
    value:
        Monotonically increasing integer assigned by the generator.
    space:
        Name of the identifier space (usually the database name).  Two
        surrogates from different spaces never compare equal even when
        their integer parts collide.
    """

    value: int
    space: str = field(default="db")

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"@{self.space}:{self.value}"

    def __repr__(self) -> str:
        return f"Surrogate({self.value!r}, space={self.space!r})"


class SurrogateGenerator:
    """Thread-safe generator of fresh surrogates for one identifier space.

    >>> gen = SurrogateGenerator("demo")
    >>> a, b = gen.fresh(), gen.fresh()
    >>> a != b and a < b
    True
    """

    def __init__(self, space: str = "db", start: int = 1) -> None:
        if start < 0:
            raise ValueError("surrogate counter must start non-negative")
        self._space = space
        self._counter = itertools.count(start)
        self._lock = threading.Lock()
        self._last = start - 1

    @property
    def space(self) -> str:
        """Identifier space this generator issues surrogates for."""
        return self._space

    @property
    def last_issued(self) -> int:
        """Integer part of the most recently issued surrogate."""
        return self._last

    def fresh(self) -> Surrogate:
        """Return a surrogate never issued before by this generator."""
        with self._lock:
            value = next(self._counter)
            self._last = value
        return Surrogate(value, self._space)

    def fresh_many(self, count: int) -> Iterator[Surrogate]:
        """Yield ``count`` fresh surrogates (convenience for bulk loads)."""
        if count < 0:
            raise ValueError("count must be non-negative")
        for _ in range(count):
            yield self.fresh()

    def advance_past(self, value: int) -> None:
        """Ensure future surrogates exceed ``value`` (used after a load)."""
        with self._lock:
            if value >= self._last:
                self._counter = itertools.count(value + 1)
                self._last = value
