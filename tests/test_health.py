"""Tests for the health subsystem (repro.obs.health): every default rule
firing and clearing deterministically."""

import pytest

from repro.engine import Database
from repro.errors import ReproError
from repro.obs import HEALTH_SCHEMA_VERSION
from repro.obs.health import (
    CRITICAL,
    DEGRADED,
    EXIT_CODES,
    OK,
    HealthMonitor,
    HealthRule,
    default_rules,
    hit_rate_rule,
    monitor_of,
    percentile_rule,
    rate_rule,
)
from repro.obs.recorder import FlightSample


def sample(seq, ts, counters=None, histograms=None, gauges=None):
    """A hand-built FlightSample: health rules read counters/histograms
    and timestamps only."""
    return FlightSample(
        seq=seq,
        ts=float(ts),
        wall=float(ts),
        elapsed=None,
        counters={k: float(v) for k, v in (counters or {}).items()},
        rates={},
        gauges=dict(gauges or {}),
        histograms=histograms or {},
    )


def series(metric, values, start_seq=1):
    """Samples one second apart carrying one counter's running values."""
    return [
        sample(start_seq + i, i, counters={metric: value})
        for i, value in enumerate(values)
    ]


def rules_by_name():
    return {rule.name: rule for rule in default_rules()}


class TestRuleMechanics:
    def test_too_few_samples_abstains(self):
        rule = rate_rule("r", "m", 0.0)
        result = rule.evaluate(series("m", [1000.0]))
        assert result.status == OK
        assert result.reason is None

    def test_invalid_severity_rejected(self):
        with pytest.raises(ValueError):
            HealthRule("r", "d", lambda window: None, severity="fatal")

    def test_window_smaller_than_min_samples_rejected(self):
        with pytest.raises(ValueError):
            HealthRule("r", "d", lambda window: None, window=1, min_samples=2)

    def test_only_newest_window_judged(self):
        rule = rate_rule("r", "m", 0.0, window=2)
        # Old growth outside the window, flat inside it: ok.
        samples = series("m", [0, 100, 100, 100])
        assert rule.evaluate(samples).status == OK


class TestDefaultRulesFireAndClear:
    @pytest.mark.parametrize(
        "name,metric",
        [
            ("view-staleness-growth", "query.view.staleness"),
            ("audit-overflow", "audit.dropped"),
        ],
    )
    def test_zero_threshold_rate_rules(self, name, metric):
        rule = rules_by_name()[name]
        firing = rule.evaluate(series(metric, [0, 3]))
        assert firing.status == DEGRADED
        assert metric in firing.reason
        cleared = rule.evaluate(series(metric, [3, 3, 3, 3, 3, 3]))
        assert cleared.status == OK

    def test_index_self_heal(self):
        rule = rules_by_name()["index-self-heal"]
        metric = "index.stale_repairs"
        assert rule.evaluate(series(metric, [0, 100])).status == DEGRADED
        assert rule.evaluate(series(metric, [0, 5])).status == OK

    def test_slowlog_rate(self):
        rule = rules_by_name()["slowlog-rate"]
        metric = "slowlog.recorded"
        assert rule.evaluate(series(metric, [0, 50])).status == DEGRADED
        assert rule.evaluate(series(metric, [0, 2])).status == OK

    @pytest.mark.parametrize(
        "name,hits,misses,traffic",
        [
            ("cache-hit-collapse", "cache.hits", "cache.misses", 200),
            ("view-hit-collapse", "query.view.hits", "query.view.misses", 40),
        ],
    )
    def test_hit_rate_collapse(self, name, hits, misses, traffic):
        rule = rules_by_name()[name]
        collapsed = [
            sample(1, 0, counters={hits: 0, misses: 0}),
            sample(2, 1, counters={hits: traffic * 0.25,
                                   misses: traffic * 0.75}),
        ]
        firing = rule.evaluate(collapsed)
        assert firing.status == DEGRADED
        assert "hit rate" in firing.reason

        healthy = [
            sample(1, 0, counters={hits: 0, misses: 0}),
            sample(2, 1, counters={hits: traffic * 0.9,
                                   misses: traffic * 0.1}),
        ]
        assert rule.evaluate(healthy).status == OK

        # An idle window abstains regardless of the lifetime ratio.
        idle = [
            sample(1, 0, counters={hits: 10, misses: 90}),
            sample(2, 1, counters={hits: 10, misses: 90}),
        ]
        assert rule.evaluate(idle).status == OK

    def test_lock_wait_p95(self):
        rule = rules_by_name()["lock-wait-p95"]
        slow = {"locks.wait_seconds":
                {"count": 10.0, "sum": 2.0, "p50": 0.1, "p95": 0.2, "p99": 0.3}}
        quiet_before = {"locks.wait_seconds":
                        {"count": 0.0, "sum": 0.0,
                         "p50": None, "p95": None, "p99": None}}
        firing = rule.evaluate([
            sample(1, 0, histograms=quiet_before),
            sample(2, 1, histograms=slow),
        ])
        assert firing.status == DEGRADED
        assert "locks.wait_seconds" in firing.reason
        # Same high lifetime percentile but no fresh observations: clears.
        cleared = rule.evaluate([
            sample(3, 2, histograms=slow),
            sample(4, 3, histograms=slow),
        ])
        assert cleared.status == OK
        # Fast waits while live: ok.
        fast = {"locks.wait_seconds":
                {"count": 10.0, "sum": 0.01,
                 "p50": 0.001, "p95": 0.002, "p99": 0.003}}
        assert rule.evaluate([
            sample(1, 0, histograms=quiet_before),
            sample(2, 1, histograms=fast),
        ]).status == OK

    def test_lock_timeouts_is_critical(self):
        rule = rules_by_name()["lock-timeouts"]
        firing = rule.evaluate(series("locks.timeouts", [0, 1]))
        assert firing.status == CRITICAL
        assert rule.evaluate(series("locks.timeouts", [1, 1, 1])).status == OK

    def test_every_default_rule_is_exercised_above(self):
        tested = {
            "view-staleness-growth", "audit-overflow", "index-self-heal",
            "slowlog-rate", "cache-hit-collapse", "view-hit-collapse",
            "lock-wait-p95", "lock-timeouts",
        }
        assert tested == set(rules_by_name())


class TestMonitor:
    def test_ok_to_degraded_to_ok_on_a_live_database(self):
        db = Database("health", observe=True)
        rec = db.obs.recorder
        monitor = db.obs.health
        rec.tick(now=0.0)
        rec.tick(now=1.0)
        assert monitor.evaluate().status == OK
        for i in range(20):
            db.obs.slowlog.note("query", 99.0, subject=i)
        rec.tick(now=2.0)
        report = monitor.evaluate()
        assert report.status == DEGRADED
        assert [r.name for r in report.firing()] == ["slowlog-rate"]
        for i in range(6):
            rec.tick(now=3.0 + i)
        assert monitor.evaluate().status == OK

    def test_critical_outranks_degraded(self):
        db = Database("health", observe=True)
        rec = db.obs.recorder
        rec.tick(now=0.0)
        for i in range(10):
            db.obs.slowlog.note("query", 99.0, subject=i)
        db.obs.metrics.counter("locks.timeouts").inc()
        rec.tick(now=1.0)
        report = db.obs.health.evaluate()
        assert report.status == CRITICAL
        assert report.exit_code == EXIT_CODES[CRITICAL] == 2

    def test_report_document_and_render(self):
        db = Database("health", observe=True)
        db.obs.recorder.tick(now=0.0)
        db.obs.recorder.tick(now=1.0)
        report = db.obs.health.evaluate()
        doc = report.as_dict()
        assert doc["schema"] == HEALTH_SCHEMA_VERSION
        assert doc["database"] == "health"
        assert doc["status"] == OK
        assert len(doc["rules"]) == len(default_rules())
        assert {"name", "status", "reason", "description"} == set(
            doc["rules"][0]
        )
        text = report.render()
        assert "health: OK" in text
        assert "lock-timeouts" in text

    def test_monitor_of(self):
        db = Database("health", observe=True)
        assert monitor_of(db).recorder is db.obs.recorder
        custom = [rate_rule("only", "m", 0.0)]
        assert [r.name for r in monitor_of(db, custom).rules] == ["only"]
        with pytest.raises(ReproError):
            monitor_of(Database("dark"))

    def test_custom_factories_compose(self):
        samples = [
            sample(1, 0, counters={"h": 0, "m": 0}),
            sample(2, 1, counters={"h": 1, "m": 9}),
        ]
        monitor_rules = [
            hit_rate_rule("hr", "h", "m", floor=0.5, min_events=5),
            percentile_rule("px", "lat", 1.0),
        ]
        results = {
            rule.name: rule.evaluate(samples) for rule in monitor_rules
        }
        assert results["hr"].status == DEGRADED
        assert results["px"].status == OK  # histogram absent → abstains

    def test_evaluate_uses_monitor_rules(self):
        db = Database("health", observe=True)
        db.obs.recorder.tick(now=0.0)
        db.obs.metrics.counter("custom.errors").inc(5)
        db.obs.recorder.tick(now=1.0)
        monitor = HealthMonitor(
            db.obs.recorder, [rate_rule("custom", "custom.errors", 0.0)]
        )
        report = monitor.evaluate()
        assert report.status == DEGRADED
        assert report.results[0].name == "custom"
