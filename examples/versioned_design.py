#!/usr/bin/env python3
"""Versioned design (§6): version graphs, states, generic relationships.

A NAND design object evolves through versions; a composite consumes it
through a *generic relationship* resolved at assembly time by each of the
paper's three selection policies: top-down query, bottom-up default, and
environment-based selection.

Run:  python examples/versioned_design.py
"""

from repro.errors import VersionError
from repro.versions import (
    DefaultSelection,
    EnvironmentRegistry,
    EnvironmentSelection,
    GenericRelationship,
    QuerySelection,
    StateGuard,
    VersionGraph,
    VersionState,
)
from repro.workloads import gate_database, make_interface


def main() -> None:
    db = gate_database("versioned")
    guard = StateGuard(db)

    # -- versions of the NAND interface (the design object) -------------------
    graph = VersionGraph(name="NAND-interface", guard=guard)
    v1 = make_interface(db, length=20, width=10)
    graph.add_version(v1)
    v2 = make_interface(db, length=14, width=8)   # shrink
    graph.derive(v1, v2)
    v3a = make_interface(db, length=12, width=8)  # two parallel alternatives
    v3b = make_interface(db, length=14, width=6)
    graph.derive(v2, v3a)
    graph.derive(v2, v3b)
    print(f"graph: {len(graph)} versions, "
          f"history of v3a = {[v['Length'] for v in graph.history_of(v3a)]}, "
          f"alternatives of v3a = {[v['Length'] for v in graph.alternatives_of(v3a)]}")

    # -- states: released versions are immutable ------------------------------
    graph.release(v2)
    try:
        v2.set_attribute("Length", 1)
    except VersionError as exc:
        print(f"update of released version rejected: {exc}")
    print(f"classification: released={len(graph.versions_in_state(VersionState.RELEASED))}, "
          f"in design={len(graph.versions_in_state(VersionState.IN_DESIGN))}")

    # -- generic relationship: selection deferred to assembly time ------------
    rel = db.catalog.inheritance_type("AllOf_GateInterface")

    def fresh_slot():
        return db.create_object("GateImplementation")

    # Policy 1: top-down — the composite states required properties.
    slot = fresh_slot()
    generic = GenericRelationship(slot, rel, graph)
    link = generic.resolve(QuerySelection("Length <= 12"))
    print(f"top-down query 'Length <= 12' selected the version with "
          f"Length={link.transmitter['Length']}")

    # Policy 2: bottom-up — the design object supplies a default.
    graph.set_default(v2)
    slot = fresh_slot()
    link = GenericRelationship(slot, rel, graph).resolve(
        DefaultSelection(released_only=True)
    )
    print(f"bottom-up default (released only) selected Length={link.transmitter['Length']}")

    # Policy 3: environment-based — selection outside both objects.  The
    # environment maps *design objects* to versions, so this graph is
    # anchored at an explicit design-object anchor.
    anchor = make_interface(db)
    anchored_graph = VersionGraph(design_object=anchor)
    for v in (v1, v2, v3a, v3b):
        anchored_graph.add_version(v)
    registry = EnvironmentRegistry()
    release_env = registry.create("release-1.0", "frozen component choices")
    release_env.assign(anchor, v2)
    testing_env = registry.create("testing", "experimental components")
    testing_env.assign(anchor, v3b)

    for name in ("release-1.0", "testing"):
        registry.activate(name)
        slot = fresh_slot()
        link = GenericRelationship(slot, rel, anchored_graph).resolve(
            EnvironmentSelection(registry)
        )
        print(f"environment {name!r} selected Length={link.transmitter['Length']}")

    # Re-resolution after a new version appears.
    slot = fresh_slot()
    generic = GenericRelationship(slot, rel, anchored_graph)
    generic.resolve(DefaultSelection())
    v4 = make_interface(db, length=10, width=5)
    anchored_graph.add_version(v4)
    anchored_graph.set_default(v4)
    generic.re_resolve(DefaultSelection())
    print(f"after releasing v4, re-resolution binds Length={slot['Length']}")
    print("done.")


if __name__ == "__main__":
    main()
