"""Shared fixtures: the paper's gate schema (§3–§4), built fresh per test.

Types are mutable (``inheritor-in`` declarations attach to them), so every
test gets its own copies.
"""

from types import SimpleNamespace

import pytest

from repro.core import (
    BOOLEAN,
    INTEGER,
    IO,
    POINT,
    EnumDomain,
    InheritanceRelationshipType,
    ListOf,
    MatrixOf,
    ObjectType,
    RelationshipType,
)


def build_gate_schema():
    """The schema of §3 and §4: pins, wires, gates, interfaces."""
    pin_type = ObjectType(
        "PinType",
        attributes={"InOut": IO, "PinLocation": POINT},
        doc="External or internal connection pin of a gate.",
    )

    wire_type = RelationshipType(
        "WireType",
        relates={"Pin1": pin_type, "Pin2": pin_type},
        attributes={"Corners": ListOf(POINT)},
        doc="A wire between two pins, with its routing geometry.",
    )

    elementary_gate = ObjectType(
        "ElementaryGate",
        attributes={
            "Length": INTEGER,
            "Width": INTEGER,
            "Function": EnumDomain("GateFunction", ["AND", "OR", "NOR", "NAND"]),
            "GatePosition": POINT,
        },
        subclasses={"Pins": pin_type},
        constraints=[
            "count (Pins) = 2 where Pins.InOut = IN",
            "count (Pins) = 1 where Pins.InOut = OUT",
        ],
        doc="A basic AND/OR/NAND/NOR gate with pins as subobjects.",
    )

    gate = ObjectType(
        "Gate",
        attributes={
            "Length": INTEGER,
            "Width": INTEGER,
            "Function": MatrixOf(BOOLEAN),
        },
        subclasses={"Pins": pin_type, "SubGates": elementary_gate},
        subrels={
            "Wires": (
                wire_type,
                "(Wire.Pin1 in Pins or Wire.Pin1 in SubGates.Pins) and "
                "(Wire.Pin2 in Pins or Wire.Pin2 in SubGates.Pins)",
            )
        },
        doc="Figure 1: gates constructed from elementary gates and wires.",
    )

    gate_interface = ObjectType(
        "GateInterface",
        attributes={"Length": INTEGER, "Width": INTEGER},
        subclasses={"Pins": pin_type},
        doc="§4.2: the external image of a gate.",
    )

    all_of_gate_interface = InheritanceRelationshipType(
        "AllOf_GateInterface",
        transmitter_type=gate_interface,
        inheriting=["Length", "Width", "Pins"],
        doc="Enables objects to inherit all data of GateInterface objects.",
    )

    gate_implementation = ObjectType(
        "GateImplementation",
        attributes={"Function": MatrixOf(BOOLEAN)},
        subclasses={"SubGates": elementary_gate},
        subrels={
            "Wires": (
                wire_type,
                "(Wire.Pin1 in Pins or Wire.Pin1 in SubGates.Pins) and "
                "(Wire.Pin2 in Pins or Wire.Pin2 in SubGates.Pins)",
            )
        },
        doc="§4.2: a realization of a gate interface.",
    )
    gate_implementation.declare_inheritor_in(all_of_gate_interface)

    return SimpleNamespace(
        pin_type=pin_type,
        wire_type=wire_type,
        elementary_gate=elementary_gate,
        gate=gate,
        gate_interface=gate_interface,
        all_of_gate_interface=all_of_gate_interface,
        gate_implementation=gate_implementation,
    )


@pytest.fixture
def gates():
    return build_gate_schema()


def build_gate_database(name="gates", record_events=False):
    """A Database whose catalog holds the gate schema, with stock classes."""
    from repro.engine import Database

    db = Database(name, record_events=record_events)
    schema = build_gate_schema()
    for type_ in (
        schema.pin_type,
        schema.wire_type,
        schema.elementary_gate,
        schema.gate,
        schema.gate_interface,
        schema.all_of_gate_interface,
        schema.gate_implementation,
    ):
        db.catalog.register(type_)
    db.create_class("Interfaces", schema.gate_interface)
    db.create_class("Implementations", schema.gate_implementation)
    db.create_class("Gates", schema.gate)
    db.schema = schema
    return db


@pytest.fixture
def gate_db():
    return build_gate_database(record_events=True)


def add_pins(owner, n_in=2, n_out=1, x0=0):
    """Populate an object's Pins subclass with n_in inputs and n_out outputs."""
    pins = []
    container = owner.subclass("Pins")
    for i in range(n_in):
        pins.append(
            container.create(InOut="IN", PinLocation={"X": x0, "Y": i})
        )
    for i in range(n_out):
        pins.append(
            container.create(InOut="OUT", PinLocation={"X": x0 + 10, "Y": i})
        )
    return pins
