"""Tests for the flight recorder (repro.obs.recorder)."""

import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import Database
from repro.obs import FLIGHT_SCHEMA_VERSION
from repro.obs.recorder import FlightRecorder, render_sample, recorder_of


def make_db(name="flight"):
    return Database(name, observe=True)


class TestTick:
    def test_first_sample_has_no_rates(self):
        rec = make_db().obs.recorder
        sample = rec.tick(now=0.0)
        assert sample.seq == 1
        assert sample.elapsed is None
        assert sample.rates == {}

    def test_rate_is_delta_over_elapsed(self):
        db = make_db()
        rec = db.obs.recorder
        rec.tick(now=0.0)
        db.obs.metrics.counter("work.done").inc(30)
        sample = rec.tick(now=2.0)
        assert sample.elapsed == 2.0
        assert sample.rate("work.done") == pytest.approx(15.0)

    def test_counter_appearing_mid_flight_rates_from_zero(self):
        db = make_db()
        rec = db.obs.recorder
        rec.tick(now=0.0)
        db.obs.metrics.counter("late.arrival").inc(4)
        sample = rec.tick(now=1.0)
        assert sample.rate("late.arrival") == pytest.approx(4.0)

    def test_non_positive_elapsed_yields_no_rates(self):
        db = make_db()
        rec = db.obs.recorder
        rec.tick(now=5.0)
        db.obs.metrics.counter("work.done").inc()
        duplicate = rec.tick(now=5.0)
        assert duplicate.rates == {}
        retreat = rec.tick(now=4.0)
        assert retreat.rates == {}

    def test_gauges_and_histograms_sampled(self):
        db = make_db()
        db.obs.metrics.gauge("depth").set(7)
        db.obs.metrics.histogram("latency").observe(0.5)
        sample = db.obs.recorder.tick(now=0.0)
        assert sample.gauges["depth"] == 7
        summary = sample.histograms["latency"]
        assert summary["count"] == 1.0
        assert sample.percentile("latency", "p50") == pytest.approx(0.5)

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            FlightRecorder(make_db(), capacity=1)


class TestRingProperty:
    @settings(max_examples=40, deadline=None)
    @given(
        steps=st.lists(
            st.tuples(
                st.floats(min_value=0.001, max_value=1000.0,
                          allow_nan=False, allow_infinity=False),
                st.integers(min_value=0, max_value=10_000),
            ),
            min_size=1,
            max_size=24,
        ),
        capacity=st.integers(min_value=2, max_value=6),
    )
    def test_wraparound_keeps_newest_and_rate_math_holds(
        self, steps, capacity
    ):
        """The ring keeps exactly the newest ``capacity`` samples, and
        every surviving sample's rate equals the counter delta over the
        (irregular) elapsed interval that produced it."""
        db = make_db()
        rec = FlightRecorder(db, capacity=capacity)
        counter = db.obs.metrics.counter("work.done")

        now = 0.0
        rec.tick(now=now)
        expected = {}  # seq -> exact rate
        total = 0
        for seq, (dt, inc) in enumerate(steps, start=2):
            now += dt
            counter.inc(inc)
            total += inc
            expected[seq] = inc / dt
            rec.tick(now=now)

        samples = rec.samples()
        taken = len(steps) + 1
        assert rec.ticks == taken
        assert len(samples) == min(taken, capacity)
        # Newest N survive, oldest first.
        assert [s.seq for s in samples] == list(
            range(taken - len(samples) + 1, taken + 1)
        )
        for sample in samples:
            if sample.seq == 1:
                assert sample.rates == {}
            else:
                assert sample.rate("work.done") == pytest.approx(
                    expected[sample.seq]
                )
        # Cumulative totals are preserved verbatim.
        assert samples[-1].counters["work.done"] == float(total)


class TestDaemon:
    def test_start_tick_stop(self):
        rec = make_db().obs.recorder
        rec.start(interval=0.005)
        assert rec.running
        rec.start(interval=0.005)  # idempotent while running
        deadline = time.monotonic() + 2.0
        while rec.ticks < 2 and time.monotonic() < deadline:
            time.sleep(0.005)
        rec.stop()
        assert not rec.running
        assert rec.ticks >= 2
        rec.stop()  # no-op when stopped

    def test_interval_validation(self):
        with pytest.raises(ValueError):
            make_db().obs.recorder.start(interval=0.0)

    def test_context_manager_stops(self):
        rec = make_db().obs.recorder
        with rec:
            rec.start(interval=0.005)
        assert not rec.running

    def test_detach_stops_recorder(self):
        db = make_db()
        rec = db.obs.recorder
        rec.start(interval=0.005)
        db.disable_observability()
        assert not rec.running


class TestInspection:
    def test_snapshot_is_stable_schema(self):
        db = make_db()
        rec = db.obs.recorder
        rec.tick(now=0.0)
        rec.tick(now=1.0)
        doc = rec.snapshot()
        assert doc["schema"] == FLIGHT_SCHEMA_VERSION
        assert doc["database"] == "flight"
        assert doc["capacity"] == rec.capacity
        assert doc["ticks"] == 2
        assert len(doc["samples"]) == 2
        assert {"seq", "ts", "wall", "elapsed", "counters", "rates",
                "gauges", "histograms"} <= set(doc["samples"][0])

    def test_window_and_series(self):
        db = make_db()
        rec = db.obs.recorder
        rec.tick(now=0.0)
        db.obs.metrics.counter("work.done").inc(2)
        rec.tick(now=1.0)
        db.obs.metrics.counter("work.done").inc(6)
        rec.tick(now=2.0)
        assert [s.seq for s in rec.window(2)] == [2, 3]
        assert rec.window(0) == []
        assert rec.rate_series("work.done") == pytest.approx([2.0, 6.0])

    def test_clear_and_len(self):
        rec = make_db().obs.recorder
        rec.tick(now=0.0)
        assert len(rec) == 1
        rec.clear()
        assert len(rec) == 0
        assert rec.latest() is None

    def test_recorder_of(self):
        db = make_db()
        assert recorder_of(db) is db.obs.recorder
        assert recorder_of(Database("dark")) is None

    def test_render_sample(self):
        db = make_db()
        rec = db.obs.recorder
        rec.tick(now=0.0)
        db.obs.metrics.counter("work.done").inc(10)
        db.obs.metrics.gauge("depth").set(3)
        text = render_sample(rec.tick(now=1.0))
        assert "work.done" in text
        assert "rates (/s):" in text
        assert "depth" in text
