"""E5 — Figure 5 / §5: weight-carrying structures from plates and girders.

The full steel-construction scenario: interfaces, value-inheriting
component subclasses, the attributed ScrewingType relationship with its
bolt/nut subobjects and quantified constraints, and the structure-level
where restriction.
"""

import pytest

from repro.errors import ConstraintViolation
from repro.workloads import generate_structure, steel_database


@pytest.fixture
def db():
    return steel_database("fig5")


class TestFigure5:
    def test_generated_structure_is_consistent(self, db):
        structure, screwings = generate_structure(db, 3, 3, 4)
        structure.check_constraints(deep=True)
        for screwing in screwings:
            screwing.check_constraints()

    def test_component_values_inherited(self, db):
        structure, _ = generate_structure(db, 2, 2, 2)
        for slot in structure.subclass("Girders"):
            interface = slot.inheritance_links[0].transmitter
            assert slot["Length"] == interface["Length"]
            assert len(slot["Bores"]) == len(interface["Bores"])
        for slot in structure.subclass("Plates"):
            interface = slot.inheritance_links[0].transmitter
            assert slot["Thickness"] == interface["Thickness"]

    def test_screwing_hides_bolt_and_nut(self, db):
        # "bolds and nuts are hidden in the relationship ScrewingType"
        structure, screwings = generate_structure(db, 1, 1, 1)
        screwing = screwings[0]
        assert len(screwing.subclass("Bolt")) == 1
        assert len(screwing.subclass("Nut")) == 1
        bolt_slot = screwing.subclass("Bolt").members()[0]
        bolt = bolt_slot.inheritance_links[0].transmitter
        assert bolt_slot["Diameter"] == bolt["Diameter"]

    def test_screwing_constraints_detect_short_bolt(self, db):
        structure, screwings = generate_structure(db, 1, 1, 1)
        screwing = screwings[0]
        bolt = screwing.subclass("Bolt").members()[0].inheritance_links[0].transmitter
        bolt.set_attribute("Length", 1)
        with pytest.raises(ConstraintViolation):
            screwing.check_constraints()

    def test_screwing_constraints_detect_wide_bolt(self, db):
        structure, screwings = generate_structure(db, 1, 1, 1)
        screwing = screwings[0]
        bolt = screwing.subclass("Bolt").members()[0].inheritance_links[0].transmitter
        nut = screwing.subclass("Nut").members()[0].inheritance_links[0].transmitter
        bolt.set_attribute("Diameter", 50)
        nut.set_attribute("Diameter", 50)  # keep s.D = n.D satisfied
        with pytest.raises(ConstraintViolation):
            screwing.check_constraints()  # bolt wider than the bores

    def test_exactly_one_bolt_and_nut_required(self, db):
        structure, screwings = generate_structure(db, 1, 1, 1)
        screwing = screwings[0]
        spare = db.create_object("BoltType", Length=100, Diameter=1)
        screwing.subclass("Bolt").create(transmitter=spare)
        with pytest.raises(ConstraintViolation):
            screwing.check_constraints()  # #s in Bolt = 1 violated

    def test_structure_where_restriction(self, db):
        structure, _ = generate_structure(db, 1, 1, 1)
        foreign_bore = db.create_object("BoreType", Diameter=12, Length=5)
        with pytest.raises(ConstraintViolation):
            structure.subrel("Screwings").create(
                {"Bores": [foreign_bore]}, Strength=1
            )

    def test_bolt_update_propagates_to_screwing(self, db):
        structure, screwings = generate_structure(db, 1, 1, 1)
        screwing = screwings[0]
        bolt_slot = screwing.subclass("Bolt").members()[0]
        bolt = bolt_slot.inheritance_links[0].transmitter
        nut = screwing.subclass("Nut").members()[0].inheritance_links[0].transmitter
        bolt.set_attribute("Diameter", 9)
        assert bolt_slot["Diameter"] == 9
        nut.set_attribute("Diameter", 9)
        # Shrinking both below the bores keeps everything consistent if
        # the bolt length formula still holds.
        bore_sum = sum(b["Length"] for b in screwing["Bores"])
        bolt.set_attribute("Length", nut["Length"] + bore_sum)
        screwing.check_constraints()

    def test_scaling_structure(self, db):
        structure, screwings = generate_structure(db, 5, 5, 10)
        assert len(structure["Girders"]) == 5
        assert len(structure["Screwings"]) == 10
        structure.check_constraints(deep=True)
