"""Tests for the integrity checker — including failure injection
(repro.engine.integrity)."""

import pytest

from repro.engine.integrity import assert_integrity, check_integrity
from repro.workloads import (
    gate_database,
    generate_component_tree,
    generate_library,
    generate_structure,
    make_flipflop,
    make_implementation,
    make_interface,
    steel_database,
)


class TestCleanDatabasesPass:
    def test_empty_database(self):
        assert check_integrity(gate_database("clean")) == []

    def test_flipflop_database(self):
        db = gate_database("clean")
        make_flipflop(db)
        assert_integrity(db)

    def test_library_database(self):
        db = gate_database("clean")
        generate_library(db, 5, 3)
        assert_integrity(db)

    def test_component_tree_database(self):
        db = gate_database("clean")
        generate_component_tree(db, depth=3, fanout=2)
        assert_integrity(db)

    def test_steel_database(self):
        db = steel_database("clean")
        generate_structure(db, 3, 3, 5)
        assert_integrity(db)

    def test_after_deletions(self):
        db = gate_database("clean")
        iface = make_interface(db)
        impl = make_implementation(db, iface)
        impl.delete()
        iface.delete()
        assert_integrity(db)


class TestFailedCreationRetraction:
    """Creation failures must not leave half-created objects behind."""

    def test_rejected_where_clause_leaves_no_residue(self):
        from repro.errors import ConstraintViolation

        db = gate_database("retract")
        ff, _ = make_flipflop(db)
        alien = db.create_object("PinType", InOut="IN")
        count_before = db.count()
        with pytest.raises(ConstraintViolation):
            ff.subrel("Wires").create({"Pin1": ff["Pins"][0], "Pin2": alien})
        assert db.count() == count_before
        assert_integrity(db)

    def test_bad_attribute_value_leaves_no_residue(self):
        from repro.errors import DomainError

        db = gate_database("retract")
        count_before = db.count()
        with pytest.raises(DomainError):
            db.create_object("GateInterface", Length="very long")
        assert db.count() == count_before
        assert_integrity(db)

    def test_bad_attrs_after_binding_unbinds(self):
        from repro.errors import DomainError

        db = gate_database("retract")
        iface = make_interface(db)
        with pytest.raises(DomainError):
            db.create_object(
                "GateImplementation", transmitter=iface, TimeBehavior="slow"
            )
        assert iface.inheritor_links == ()  # the failed bind was retracted
        assert_integrity(db)

    def test_bad_relationship_attrs_leave_no_residue(self):
        from repro.errors import DomainError

        db = gate_database("retract")
        iface = make_interface(db)
        a, b, _ = iface.subclass("Pins").members()
        count_before = db.count()
        with pytest.raises(DomainError):
            db.create_relationship(
                "WireType", {"Pin1": a, "Pin2": b}, Corners="zigzag"
            )
        assert db.count() == count_before
        assert a._participating == set()
        assert_integrity(db)


class TestFailureInjection:
    def test_dangling_registry_entry(self):
        db = gate_database("inject")
        iface = make_interface(db)
        iface._deleted = True  # corrupt: deleted without unregistering
        kinds = {v.kind for v in check_integrity(db)}
        assert "registry" in kinds

    def test_foreign_database_object(self):
        db = gate_database("inject")
        other = gate_database("elsewhere")
        stray = make_interface(other)
        db._objects[stray.surrogate] = stray  # corrupt: adopted by force
        violations = check_integrity(db)
        assert any(
            "does not reference its database" in v.detail for v in violations
        )

    def test_container_membership_broken(self):
        db = gate_database("inject")
        iface = make_interface(db)
        pin = iface.subclass("Pins").members()[0]
        del iface.subclass("Pins")._members[pin.surrogate]  # corrupt
        violations = check_integrity(db)
        assert any(v.kind == "containment" for v in violations)

    def test_parent_pointer_broken(self):
        db = gate_database("inject")
        iface = make_interface(db)
        pin = iface.subclass("Pins").members()[0]
        pin.parent = None  # corrupt: container still references it
        violations = check_integrity(db)
        assert any(v.kind == "containment" for v in violations)

    def test_double_containment(self):
        db = gate_database("inject")
        a = make_interface(db)
        b = make_interface(db)
        pin = a.subclass("Pins").members()[0]
        b.subclass("Pins")._members[pin.surrogate] = pin  # corrupt
        violations = check_integrity(db)
        assert any("two complex objects" in v.detail for v in violations)

    def test_relationship_backreference_missing(self):
        db = gate_database("inject")
        iface = make_interface(db)
        a, b, _ = iface.subclass("Pins").members()
        wire = db.create_relationship("WireType", {"Pin1": a, "Pin2": b})
        a._participating.discard(wire)  # corrupt
        violations = check_integrity(db)
        assert any("back-reference" in v.detail for v in violations)

    def test_relationship_to_deleted_participant(self):
        db = gate_database("inject")
        iface = make_interface(db)
        a, b, _ = iface.subclass("Pins").members()
        wire = db.create_relationship("WireType", {"Pin1": a, "Pin2": b})
        a._deleted = True  # corrupt: deleted without cascading
        violations = check_integrity(db)
        assert any("deleted" in v.detail for v in violations)

    def test_half_registered_link(self):
        db = gate_database("inject")
        iface = make_interface(db)
        impl = make_implementation(db, iface)
        link = impl.inheritance_links[0]
        iface._links_as_transmitter.remove(link)  # corrupt one side
        violations = check_integrity(db)
        assert any("does not register the link" in v.detail for v in violations)

    def test_vanished_permeable_member(self):
        db = gate_database("inject")
        iface = make_interface(db)
        impl = make_implementation(db, iface)
        # Corrupt the schema: remove Width from the transmitter type.
        del db.catalog.object_type("GateInterface").attributes["Width"]
        violations = check_integrity(db)
        assert any("vanished" in v.detail for v in violations)

    def test_class_member_type_violation(self):
        db = gate_database("inject")
        db.create_class("PinsOnly", "PinType")
        iface = make_interface(db)
        db.class_("PinsOnly")._members[iface.surrogate] = iface  # corrupt
        violations = check_integrity(db)
        assert any(v.kind == "class" for v in violations)

    def test_assert_integrity_raises_with_details(self):
        db = gate_database("inject")
        iface = make_interface(db)
        iface._deleted = True
        with pytest.raises(AssertionError) as excinfo:
            assert_integrity(db)
        assert "registry" in str(excinfo.value)
