"""Integrity constraints.

§3: *"Integrity constraints may be defined with the definition of an object
type.  They are local to the object type, i.e. they define conditions the
attributes of the objects have to obey."*  Relationship types and
inheritance-relationship types carry constraints the same way (§4.1, §5).

Two constraint flavours are supported:

* :class:`ExprConstraint` — written in the paper's constraint language and
  evaluated by :mod:`repro.expr` against the object;
* :class:`CallableConstraint` — an arbitrary Python predicate, for
  conditions beyond the little language.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Union

from ..errors import ConstraintViolation, ExprEvaluationError
from ..expr import EvalContext, parse_constraints, truthy
from ..expr.ast import Node
from ..expr.compile import compile_predicate

__all__ = [
    "Constraint",
    "ExprConstraint",
    "CallableConstraint",
    "as_constraints",
    "check_all",
]


class Constraint:
    """Base class: something checkable against an object."""

    #: Human-readable source/description, used in violation messages.
    source: str = ""

    def holds(self, subject: Any, bindings: Optional[Dict[str, Any]] = None) -> bool:
        """True when the constraint is satisfied by ``subject``."""
        raise NotImplementedError

    def check(self, subject: Any, bindings: Optional[Dict[str, Any]] = None) -> None:
        """Raise :class:`~repro.errors.ConstraintViolation` unless satisfied."""
        if not self.holds(subject, bindings):
            raise ConstraintViolation(
                f"constraint {self.source!r} violated by {subject!r}",
                constraint=self.source,
                subject=subject,
            )

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.source!r}>"


class ExprConstraint(Constraint):
    """A constraint written in the paper's expression language."""

    def __init__(self, node: Node, source: str = "") -> None:
        self.node = node
        self.source = source or node.unparse()

    @classmethod
    def parse(cls, source: str) -> List["ExprConstraint"]:
        """Parse a ``;``-separated constraint block into constraint objects."""
        return [cls(node, node.unparse()) for node in parse_constraints(source)]

    def holds(self, subject: Any, bindings: Optional[Dict[str, Any]] = None) -> bool:
        # Bindings-free checks against a live slotted object run the
        # compiled program (one closure call); everything else — binder
        # scopes from the DDL layer, plain values, deleted objects (the
        # tree walk owns the ObjectDeletedError protocol) — interprets.
        if bindings is None and getattr(subject, "_row", -1) >= 0:
            type_ = getattr(subject, "object_type", None)
            if type_ is not None:
                predicate = compile_predicate(self.node, type_)
                try:
                    return predicate(subject)
                except ExprEvaluationError as exc:
                    raise ConstraintViolation(
                        f"constraint {self.source!r} failed to evaluate "
                        f"on {subject!r}: {exc}",
                        constraint=self.source,
                        subject=subject,
                    ) from exc
        return self.naive_holds(subject, bindings)

    def naive_holds(
        self, subject: Any, bindings: Optional[Dict[str, Any]] = None
    ) -> bool:
        """Tree-walking evaluation — the compiled path's testing oracle."""
        ctx = EvalContext(subject, bindings)
        try:
            return truthy(self.node.evaluate(ctx))
        except ExprEvaluationError as exc:
            raise ConstraintViolation(
                f"constraint {self.source!r} failed to evaluate on {subject!r}: {exc}",
                constraint=self.source,
                subject=subject,
            ) from exc


class CallableConstraint(Constraint):
    """A constraint implemented as a Python predicate ``fn(subject) -> bool``."""

    def __init__(self, predicate: Callable[[Any], bool], source: str = "") -> None:
        self.predicate = predicate
        self.source = source or getattr(predicate, "__name__", "<predicate>")

    def holds(self, subject: Any, bindings: Optional[Dict[str, Any]] = None) -> bool:
        return bool(self.predicate(subject))


ConstraintLike = Union[Constraint, str, Callable[[Any], bool]]


def as_constraints(items: Optional[Iterable[ConstraintLike]]) -> List[Constraint]:
    """Normalise a mixed list of constraint inputs.

    Strings are parsed as constraint blocks (each may yield several
    constraints), callables become :class:`CallableConstraint`, constraint
    objects pass through.
    """
    normalised: List[Constraint] = []
    for item in items or []:
        if isinstance(item, Constraint):
            normalised.append(item)
        elif isinstance(item, str):
            normalised.extend(ExprConstraint.parse(item))
        elif callable(item):
            normalised.append(CallableConstraint(item))
        else:
            raise TypeError(f"cannot interpret {item!r} as a constraint")
    return normalised


def check_all(
    constraints: Iterable[Constraint],
    subject: Any,
    bindings: Optional[Dict[str, Any]] = None,
) -> None:
    """Check every constraint, raising on the first violation."""
    for constraint in constraints:
        constraint.check(subject, bindings)
