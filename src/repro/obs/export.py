"""Audit-log export: the ``repro.audit/1`` schema, table rendering, JSONL.

Mirrors the shape of :mod:`repro.obs.report` for the audit side:
:func:`audit_snapshot` freezes an observed database's
:class:`~repro.obs.provenance.AuditLog` (with optional filters) into a
stable JSON document, :func:`render_audit_table` prints the same data as
aligned text, and :class:`JsonlSink` streams records to a file as they are
appended (the ``audit_sink=`` option of
:meth:`~repro.engine.database.Database.enable_observability`).

The ``repro.audit/1`` document::

    {
      "schema": "repro.audit/1",
      "database": "design",
      "appended": 124,
      "records": [
        {"seq": 17, "ts": 1722950000.1, "kind": "attribute_updated",
         "subject": "<GateInterface @db:3>", "cause": null, "trace": 17,
         "detail": {"attribute": "Length", "old": "10", "new": "8"}},
        ...
      ],
      "cones": [
        {"trace": 17, "root": {...}, "records": 4, "breadth": 3,
         "depth": 1, "by_rel_type": {"AllOf_GateInterface": 3},
         "members": ["<GateImplementation @db:4>", ...],
         "wall_time": 0.00012},
        ...
      ]
    }
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from ..errors import ReproError

__all__ = [
    "AUDIT_SCHEMA_VERSION",
    "audit_snapshot",
    "render_audit_table",
    "JsonlSink",
]

AUDIT_SCHEMA_VERSION = "repro.audit/1"


def _audit_of(db):
    obs = getattr(db, "obs", None)
    audit = obs.audit if obs is not None else None
    if audit is None:
        raise ReproError(
            f"database {db.name!r} has no audit log attached (create it "
            f"with observe=True or enable_observability(audit=True))"
        )
    return audit


def audit_snapshot(
    db,
    kind: Optional[str] = None,
    subject: Optional[str] = None,
    trace: Optional[int] = None,
    include_cones: bool = True,
) -> Dict[str, Any]:
    """The ``repro.audit/1`` dictionary for an observed database.

    ``kind``/``subject``/``trace`` filter the exported records (subject is
    a substring match on the object's repr); cones are reconstructed from
    the *filtered* trace set so the export stays self-consistent.
    """
    audit = _audit_of(db)
    records = audit.records(kind=kind, subject=subject, trace=trace)
    result: Dict[str, Any] = {
        "schema": AUDIT_SCHEMA_VERSION,
        "database": db.name,
        "appended": audit.appended,
        "records": [record.as_dict() for record in records],
    }
    if include_cones:
        traces: Dict[int, None] = {}
        for record in records:
            traces.setdefault(record.trace, None)
        cones = []
        for trace_id in traces:
            cone = audit.cone(trace_id)
            if cone is not None:
                cones.append(cone.as_dict())
        result["cones"] = cones
    return result


def render_audit_table(snap: Dict[str, Any]) -> str:
    """Aligned text rendering of an audit snapshot for terminal output."""
    records = snap.get("records", [])
    lines: List[str] = [
        f"audit log of {snap['database']}: {len(records)} record(s) "
        f"shown, {snap.get('appended', '?')} appended",
        "",
    ]
    if not records:
        lines.append("(no records match)")
    for record in records:
        cause = f" <-#{record['cause']}" if record["cause"] is not None else ""
        subject = record["subject"] or "-"
        lines.append(
            f"#{record['seq']:<6} trace={record['trace']:<6} "
            f"{record['kind']:<24} {subject}{cause}"
        )
        detail = dict(record.get("detail") or {})
        if record["kind"] == "propagation.fanout" and "reached" in detail:
            # The member list is rendered once, in the cones section.
            detail["reached"] = f"{len(detail['reached'])} inheritor(s)"
        if detail:
            summary = ", ".join(f"{k}={v!r}" for k, v in detail.items())
            lines.append(f"        {summary}")
    cones = snap.get("cones")
    if cones:
        lines += ["", f"propagation cones ({len(cones)}):"]
        for cone in cones:
            root = cone["root"]
            lines.append(
                f"  trace {cone['trace']}: {root['kind']} on "
                f"{root['subject'] or '-'} -> breadth={cone['breadth']} "
                f"depth={cone['depth']} records={cone['records']} "
                f"wall={cone['wall_time']:.6f}s"
            )
            for rel, count in sorted(cone["by_rel_type"].items()):
                lines.append(f"    via {rel}: {count}")
            for member in cone["members"]:
                lines.append(f"    reached {member}")
    return "\n".join(lines)


class JsonlSink:
    """Append audit records to a file as JSON lines (one record each).

    Accepts a path (opened in append mode) or any object with ``write``.
    Attached through ``enable_observability(audit_sink="audit.jsonl")``;
    every record is written as it is appended, so the file is a faithful
    superset of the bounded in-memory ring.
    """

    def __init__(self, target):
        if isinstance(target, str):
            self._file = open(target, "a", encoding="utf-8")
            self._owns = True
        else:
            self._file = target
            self._owns = False
        self.written = 0

    def write_record(self, record: Dict[str, Any]) -> None:
        self._file.write(json.dumps(record) + "\n")
        self.written += 1

    def close(self) -> None:
        if self._owns and self._file is not None:
            self._file.close()
        self._file = None

    def __repr__(self) -> str:
        return f"<JsonlSink written={self.written}>"
