"""Tests for the query language (repro.query)."""

import pytest

from repro.errors import QueryError
from repro.query import parse_query
from tests.conftest import add_pins, build_gate_database


@pytest.fixture
def db():
    db = build_gate_database("query")
    for length, width in ((10, 5), (20, 5), (30, 9), (40, 9)):
        iface = db.create_object(
            "GateInterface", class_name="Interfaces", Length=length, Width=width
        )
        add_pins(iface, n_in=2, n_out=1)
    return db


class TestParser:
    def test_minimal_query(self):
        spec = parse_query("select * from Interfaces")
        assert spec.projection is None
        assert spec.source_name == "Interfaces"
        assert spec.where is None

    def test_full_query(self):
        spec = parse_query(
            "select distinct Length, Width from Interfaces "
            "where Length > 10 order by Width desc limit 3"
        )
        assert spec.distinct
        assert spec.column_names == ["Length", "Width"]
        assert spec.where_source == "Length > 10"
        assert spec.order_source == "Width"
        assert spec.descending and spec.limit == 3

    def test_expression_projection(self):
        spec = parse_query("select Length * Width from Interfaces")
        assert spec.column_names == ["Length * Width"]

    def test_aggregate_in_where(self):
        spec = parse_query("select * from Interfaces where count(Pins) = 3")
        assert "count" in spec.where_source

    def test_nested_commas_stay_in_projection(self):
        spec = parse_query("select min(Length + 1), Width from Interfaces")
        assert len(spec.projection) == 2

    def test_missing_select(self):
        with pytest.raises(QueryError):
            parse_query("from Interfaces")

    def test_missing_from(self):
        with pytest.raises(QueryError):
            parse_query("select *")

    def test_bad_limit(self):
        with pytest.raises(QueryError):
            parse_query("select * from A limit x")
        with pytest.raises(QueryError):
            parse_query("select * from A limit 1.5")

    def test_order_requires_by(self):
        with pytest.raises(QueryError):
            parse_query("select * from A order Length")

    def test_empty_where(self):
        with pytest.raises(QueryError):
            parse_query("select * from A where")

    def test_case_insensitive_clause_words(self):
        spec = parse_query("SELECT * FROM Interfaces LIMIT 2")
        assert spec.limit == 2


class TestExecution:
    def test_select_star(self, db):
        result = db.query("select * from Interfaces")
        assert len(result) == 4
        assert result.objects is not None
        assert all(obj.object_type.name == "GateInterface" for obj in result.objects)

    def test_where_filter(self, db):
        result = db.query("select Length from Interfaces where Width = 9")
        assert sorted(result.scalars()) == [30, 40]

    def test_from_type_name_fallback(self, db):
        # GateInterface is a type, not a class name.
        result = db.query("select * from GateInterface where Length = 10")
        assert len(result) == 1

    def test_unknown_source(self, db):
        with pytest.raises(QueryError):
            db.query("select * from Nowhere")

    def test_projection_expressions(self, db):
        result = db.query(
            "select Length, Length * Width from Interfaces where Length = 30"
        )
        assert result.rows == [(30, 270)]
        assert result.columns == ["Length", "Length * Width"]

    def test_aggregate_over_subclass(self, db):
        result = db.query("select count(Pins) from Interfaces")
        assert result.scalars() == [3, 3, 3, 3]

    def test_order_by_asc_and_desc(self, db):
        asc = db.query("select Length from Interfaces order by Length")
        desc = db.query("select Length from Interfaces order by Length desc")
        assert asc.scalars() == [10, 20, 30, 40]
        assert desc.scalars() == list(reversed(asc.scalars()))

    def test_order_by_expression(self, db):
        result = db.query(
            "select Length from Interfaces order by Length * Width desc limit 1"
        )
        assert result.scalars() == [40]

    def test_limit(self, db):
        result = db.query("select * from Interfaces order by Length limit 2")
        assert [obj["Length"] for obj in result.objects] == [10, 20]

    def test_limit_zero(self, db):
        assert len(db.query("select * from Interfaces limit 0")) == 0

    def test_distinct_values(self, db):
        result = db.query("select distinct Width from Interfaces")
        assert sorted(result.scalars()) == [5, 9]

    def test_distinct_star(self, db):
        result = db.query("select distinct * from Interfaces")
        assert len(result) == 4

    def test_missing_member_projects_none(self, db):
        result = db.query("select Nonsense from Interfaces limit 1")
        # Unresolved bare identifiers follow the enum-label convention and
        # evaluate to their own spelling — documented expression semantics.
        assert result.scalars() == ["Nonsense"]

    def test_deleted_objects_excluded(self, db):
        victim = db.class_("Interfaces").members()[0]
        victim.delete()
        assert len(db.query("select * from Interfaces")) == 3

    def test_inherited_members_queryable(self, db):
        iface = db.class_("Interfaces").members()[0]
        db.create_object(
            "GateImplementation", class_name="Implementations", transmitter=iface
        )
        result = db.query(
            "select Length from Implementations where count(Pins) = 3"
        )
        assert result.scalars() == [iface["Length"]]

    def test_result_repr_and_iter(self, db):
        result = db.query("select Length from Interfaces limit 1")
        assert "rows=1" in repr(result)
        assert list(result) == result.rows
