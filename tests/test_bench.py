"""Tests for the perf observatory (PR: bench harness, profiler, slow log).

Covers `repro.obs.bench` (runner statistics, suite registration and
discovery, the BENCH_*.json snapshot trajectory, the noise-aware compare
gate with repeat-to-confirm), the sampling profiler, the slow-operation
log's diagnosis capture, the `repro bench` / `repro profile` /
`repro slowlog` CLI surfaces, and `benchmarks/report.py`.
"""

import dataclasses
import itertools
import json
import time

import pytest

from repro.cli import main
from repro.obs.bench import (
    BENCH_SCHEMA_VERSION,
    BenchSuite,
    CaseResult,
    Runner,
    compare_snapshots,
    confirm_regressions,
    discover_suites,
    latest_snapshot,
    load_snapshot,
    make_snapshot,
    next_snapshot_path,
    snapshot_paths,
    validate_snapshot,
    write_snapshot,
)
from repro.obs.profiler import PROFILE_SCHEMA_VERSION, SamplingProfiler
from repro.obs.slowlog import (
    DEFAULT_BUDGETS,
    SLOWLOG_SCHEMA_VERSION,
    SlowLog,
)
from repro.workloads import gate_database, make_implementation, make_interface


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------

_dir_ids = itertools.count()

ADAPTED_MODULE = """\
def work():
    total = 0
    for i in range(150):
        total += i * i
    return total


def register(suite):
    @suite.case("squares")
    def squares_case():
        return work
"""

UNADAPTED_MODULE = """\
def helper():
    return 1
"""


def make_bench_dir(tmp_path, modules):
    """A throwaway benchmark directory with a unique package name (the
    harness imports modules as ``<dirname>.<stem>``, so reusing a name
    across tests would hit ``sys.modules``)."""
    bdir = tmp_path / f"benchdir{next(_dir_ids)}"
    bdir.mkdir()
    for name, source in modules.items():
        (bdir / name).write_text(source)
    return bdir


def result_of(name="case", group="g", minimum=1e-3, **overrides):
    fields = dict(
        name=name,
        group=group,
        number=100,
        repeats=3,
        warmup=1,
        min=minimum,
        median=minimum * 1.1,
        mean=minimum * 1.2,
        stdev=minimum * 0.01,
        times=[minimum, minimum * 1.1, minimum * 1.3],
    )
    fields.update(overrides)
    return CaseResult(**fields)


# ---------------------------------------------------------------------------
# suite registration and the runner
# ---------------------------------------------------------------------------

class TestSuiteAndRunner:
    def test_case_decorator_and_direct_registration(self):
        suite = BenchSuite("g", quick=True)

        @suite.case("decorated")
        def make_decorated():
            return lambda: None

        suite.case("direct", lambda: (lambda: None), number=7)
        assert [c.name for c in suite.cases] == ["decorated", "direct"]
        assert suite.cases[1].number == 7
        assert len(suite) == 2
        assert suite.quick

    def test_quick_mode_caps_repeats_and_min_time(self):
        runner = Runner(repeats=9, quick=True)
        assert runner.repeats == 3
        assert runner.min_time == 0.005
        assert Runner(repeats=9).repeats == 9

    def test_calibration_amortises_fast_thunks(self):
        runner = Runner(quick=True)
        # A ~50ns thunk needs thousands of inner iterations to span
        # min_time; calibration must grow number well past 1.
        assert runner.calibrate(lambda: None) > 64

    def test_run_case_statistics(self):
        suite = BenchSuite("g", quick=True)
        calls = {"setup": 0, "runs": 0}

        @suite.case("counted", number=10)
        def make_counted():
            calls["setup"] += 1

            def thunk():
                calls["runs"] += 1

            return thunk

        runner = Runner(quick=True)
        [result] = runner.run([suite])
        assert calls["setup"] == 1  # setup outside the measurement
        # warmup + repeats * number iterations, nothing else
        assert calls["runs"] == runner.warmup + runner.repeats * 10
        assert result.name == "counted" and result.group == "g"
        assert result.number == 10 and result.repeats == runner.repeats
        assert len(result.times) == runner.repeats
        assert 0 <= result.min <= result.median
        assert result.min <= result.mean
        assert result.stdev >= 0

    def test_run_reports_progress(self):
        suite = BenchSuite("g", quick=True)
        suite.case("a", lambda: (lambda: None), number=1)
        lines = []
        Runner(quick=True).run([suite], progress=lines.append)
        assert len(lines) == 1 and "g::a" in lines[0] and "min=" in lines[0]

    def test_merge_best_keeps_lowest_stats(self):
        first = result_of(minimum=2e-3)
        second = result_of(minimum=1e-3)
        merged = first.merge_best(second)
        assert merged.min == 1e-3
        assert merged.repeats == first.repeats + second.repeats
        assert merged.times == first.times + second.times


class TestDiscovery:
    def test_discovers_adapted_and_reports_unadapted(self, tmp_path):
        bdir = make_bench_dir(tmp_path, {
            "bench_alpha.py": ADAPTED_MODULE,
            "bench_beta.py": UNADAPTED_MODULE,
            "helper.py": "raise AssertionError('must not be imported')\n",
        })
        suites, unadapted = discover_suites(str(bdir), quick=True)
        assert [s.group for s in suites] == ["bench_alpha"]
        assert [c.name for c in suites[0].cases] == ["squares"]
        assert suites[0].quick
        assert unadapted == ["bench_beta"]

    def test_only_filters_before_import(self, tmp_path):
        bdir = make_bench_dir(tmp_path, {
            "bench_alpha.py": ADAPTED_MODULE,
            "bench_broken.py": "raise RuntimeError('import-time bomb')\n",
        })
        suites, unadapted = discover_suites(str(bdir), only=["alpha"])
        assert [s.group for s in suites] == ["bench_alpha"]
        assert unadapted == []

    def test_missing_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            discover_suites(str(tmp_path / "nowhere"))


# ---------------------------------------------------------------------------
# the BENCH_*.json trajectory
# ---------------------------------------------------------------------------

class TestSnapshots:
    def test_round_trip(self, tmp_path):
        runner = Runner(quick=True)
        snap = make_snapshot([result_of()], seq=1, mode="quick", runner=runner)
        assert validate_snapshot(snap) == []
        assert snap["schema"] == BENCH_SCHEMA_VERSION
        assert snap["config"]["mode"] == "quick"
        assert snap["config"]["repeats"] == runner.repeats
        assert "python" in snap["fingerprint"]

        seq, path = next_snapshot_path(str(tmp_path))
        assert (seq, path.name) == (1, "BENCH_0001.json")
        write_snapshot(str(path), snap)
        loaded = load_snapshot(str(path))
        assert loaded == json.loads(json.dumps(snap))  # JSON-stable

    def test_sequence_advances_and_latest_wins(self, tmp_path):
        for expected_seq in (1, 2, 3):
            seq, path = next_snapshot_path(str(tmp_path))
            assert seq == expected_seq
            write_snapshot(str(path), make_snapshot([result_of()], seq=seq))
        paths = snapshot_paths(str(tmp_path))
        assert [p.name for p in paths] == [
            "BENCH_0001.json", "BENCH_0002.json", "BENCH_0003.json",
        ]
        assert latest_snapshot(str(tmp_path)).name == "BENCH_0003.json"

    def test_latest_none_when_empty(self, tmp_path):
        assert latest_snapshot(str(tmp_path)) is None

    def test_results_sorted_deterministically(self):
        snap = make_snapshot(
            [result_of("b", group="z"), result_of("a", group="a")], seq=1
        )
        keys = [(r["group"], r["name"]) for r in snap["results"]]
        assert keys == sorted(keys)

    def test_validate_rejects_malformed(self):
        assert validate_snapshot([]) != []
        assert validate_snapshot({"schema": "other/9"})
        good = make_snapshot([result_of()], seq=1)
        for mutate in (
            lambda s: s.update(seq="one"),
            lambda s: s.update(fingerprint=None),
            lambda s: s.update(results={"not": "a list"}),
            lambda s: s["results"][0].update(min=-1.0),
            lambda s: s["results"][0].update(mean=float("nan")),
            lambda s: s["results"][0].update(name=42),
            lambda s: s["results"].append("not an object"),
        ):
            snap = json.loads(json.dumps(good))
            mutate(snap)
            assert validate_snapshot(snap) != [], mutate

    def test_write_refuses_invalid(self, tmp_path):
        with pytest.raises(ValueError):
            write_snapshot(str(tmp_path / "BENCH_0001.json"), {"schema": "no"})
        assert snapshot_paths(str(tmp_path)) == []

    def test_load_rejects_doctored_schema(self, tmp_path):
        path = tmp_path / "BENCH_0001.json"
        snap = make_snapshot([result_of()], seq=1)
        snap["schema"] = "repro.bench/999"
        path.write_text(json.dumps(snap))
        with pytest.raises(ValueError, match="not a valid"):
            load_snapshot(str(path))


# ---------------------------------------------------------------------------
# compare + regression gate
# ---------------------------------------------------------------------------

class TestCompare:
    def test_clean_pair_is_quiet(self):
        prior = make_snapshot([result_of(minimum=1e-3)], seq=1)
        current = make_snapshot([result_of(minimum=1.05e-3)], seq=2)
        comparison = compare_snapshots(prior, current)
        assert comparison.ok
        assert not comparison.regressions and not comparison.improvements
        assert "PASS" in comparison.render()

    def test_injected_2x_regression_fires(self):
        prior = make_snapshot([result_of(minimum=1e-3)], seq=1)
        current = make_snapshot([result_of(minimum=2e-3)], seq=2)
        comparison = compare_snapshots(prior, current)
        assert not comparison.ok
        [delta] = comparison.regressions
        assert delta.ratio == pytest.approx(2.0)
        rendered = comparison.render()
        assert "REGRESSION g::case" in rendered and "FAIL" in rendered

    def test_noise_floor_suppresses_nanosecond_jitter(self):
        # 3x relative growth, but only 20ns absolute: below the floor.
        prior = make_snapshot([result_of(minimum=1e-8)], seq=1)
        current = make_snapshot([result_of(minimum=3e-8)], seq=2)
        assert compare_snapshots(prior, current).ok
        # The same ratio above the floor is a real regression.
        prior = make_snapshot([result_of(minimum=1e-6)], seq=1)
        current = make_snapshot([result_of(minimum=3e-6)], seq=2)
        assert not compare_snapshots(prior, current).ok

    def test_threshold_boundary(self):
        prior = make_snapshot([result_of(minimum=1e-3)], seq=1)
        just_under = make_snapshot([result_of(minimum=1.2e-3)], seq=2)
        assert compare_snapshots(prior, just_under, threshold=0.25).ok
        assert not compare_snapshots(prior, just_under, threshold=0.10).ok

    def test_improvements_added_removed(self):
        prior = make_snapshot(
            [result_of("kept", minimum=2e-3), result_of("gone")], seq=1
        )
        current = make_snapshot(
            [result_of("kept", minimum=0.5e-3), result_of("new")], seq=2
        )
        comparison = compare_snapshots(prior, current)
        assert comparison.ok  # additions/removals/improvements never gate
        [delta] = comparison.improvements
        assert delta.name == "kept" and delta.ratio == pytest.approx(0.25)
        assert comparison.added == ["g::new"]
        assert comparison.removed == ["g::gone"]
        rendered = comparison.render()
        assert "improved" in rendered and "new case(s)" in rendered


class TestConfirmRegressions:
    def test_transient_regression_clears_on_rerun(self):
        suite = BenchSuite("g", quick=True)

        @suite.case("steady")
        def make_steady():
            return lambda: sum(range(50))

        runner = Runner(quick=True)
        honest = runner.run([suite])
        prior = make_snapshot(honest, seq=1)

        # A scheduler hiccup: the measured run looks 20x slower.  The
        # wide threshold keeps run-to-run timer drift (easily 2x on a
        # loaded box) from masking what we test: that the re-measure
        # clears an injected order-of-magnitude outlier.
        contaminated = [
            dataclasses.replace(
                honest[0],
                min=honest[0].min * 20,
                median=honest[0].median * 20,
                mean=honest[0].mean * 20,
            )
        ]
        comparison = compare_snapshots(
            prior, make_snapshot(contaminated, seq=2), threshold=4.0
        )
        assert not comparison.ok

        confirmed = confirm_regressions(
            comparison, [suite], runner, contaminated, rounds=3
        )
        recheck = compare_snapshots(
            prior, make_snapshot(confirmed, seq=2), threshold=4.0
        )
        assert recheck.ok  # the re-measure found the honest minimum

    def test_ok_comparison_is_untouched(self):
        results = [result_of()]
        comparison = compare_snapshots(
            make_snapshot(results, seq=1), make_snapshot(results, seq=2)
        )
        assert confirm_regressions(
            comparison, [], Runner(quick=True), results
        ) is results


# ---------------------------------------------------------------------------
# the repro bench CLI (golden round-trip)
# ---------------------------------------------------------------------------

class TestBenchCLI:
    @pytest.fixture
    def bench_dir(self, tmp_path):
        return make_bench_dir(tmp_path, {"bench_alpha.py": ADAPTED_MODULE})

    def bench(self, *extra, bench_dir, root):
        return main([
            "bench", "--quick", "--dir", str(bench_dir), "--root", str(root),
            *extra,
        ])

    def test_quick_run_emits_valid_snapshot(self, bench_dir, tmp_path, capsys):
        root = tmp_path / "trajectory"
        root.mkdir()
        assert self.bench(bench_dir=bench_dir, root=root) == 0
        out = capsys.readouterr().out
        assert "wrote" in out and "BENCH_0001.json" in out
        snap = load_snapshot(str(root / "BENCH_0001.json"))
        assert snap["seq"] == 1 and snap["config"]["mode"] == "quick"
        assert [r["name"] for r in snap["results"]] == ["squares"]

    def test_compare_gate_quiet_then_fires_then_warn_only(
        self, bench_dir, tmp_path, capsys
    ):
        from repro.obs import race

        if race.active() is not None:
            pytest.skip("sanitizer overhead perturbs the clean-pair timing")
        root = tmp_path / "trajectory"
        root.mkdir()
        assert self.bench(bench_dir=bench_dir, root=root) == 0

        # Clean pair: same workload twice must pass the gate.
        assert self.bench("--compare", bench_dir=bench_dir, root=root) == 0
        out = capsys.readouterr().out
        assert "prior:" in out and "regression gate: PASS" in out
        assert (root / "BENCH_0002.json").exists()

        # Doctor the latest snapshot to be 4x faster than reality: the
        # next honest run is a >25% regression against it.
        latest = root / "BENCH_0002.json"
        snap = json.loads(latest.read_text())
        for entry in snap["results"]:
            for key in ("min", "median", "mean"):
                entry[key] /= 4
        latest.write_text(json.dumps(snap))

        code = self.bench(
            "--compare", "--confirm", "0", bench_dir=bench_dir, root=root
        )
        assert code == 2
        assert "REGRESSION" in capsys.readouterr().out

        # Explicit prior path (the doctored snapshot) + advisory mode.
        code = self.bench(
            "--compare", str(latest), "--confirm", "0", "--warn-only",
            bench_dir=bench_dir, root=root,
        )
        assert code == 0  # advisory mode still reports, never gates
        assert "regression gate: FAIL" in capsys.readouterr().out

    def test_compare_with_no_prior_seeds_trajectory(
        self, bench_dir, tmp_path, capsys
    ):
        root = tmp_path / "fresh"
        root.mkdir()
        assert self.bench("--compare", bench_dir=bench_dir, root=root) == 0
        assert "seeds the trajectory" in capsys.readouterr().err
        assert (root / "BENCH_0001.json").exists()

    def test_list_and_no_emit(self, bench_dir, tmp_path, capsys):
        root = tmp_path / "trajectory"
        root.mkdir()
        assert self.bench("--list", bench_dir=bench_dir, root=root) == 0
        assert "bench_alpha::squares" in capsys.readouterr().out
        assert self.bench("--no-emit", bench_dir=bench_dir, root=root) == 0
        assert snapshot_paths(str(root)) == []  # neither run wrote

    def test_match_without_hits_errors(self, bench_dir, tmp_path, capsys):
        assert self.bench(
            "--match", "nonexistent", bench_dir=bench_dir, root=tmp_path
        ) == 1
        assert "no benchmark suites matched" in capsys.readouterr().err

    def test_json_output(self, bench_dir, tmp_path, capsys):
        assert self.bench(
            "--no-emit", "--json", bench_dir=bench_dir, root=tmp_path
        ) == 0
        out = capsys.readouterr().out
        doc = json.loads(out[out.index("{"):])
        assert validate_snapshot(doc) == []


# ---------------------------------------------------------------------------
# the sampling profiler
# ---------------------------------------------------------------------------

def spin(seconds):
    deadline = time.perf_counter() + seconds
    total = 0
    while time.perf_counter() < deadline:
        total += sum(i * i for i in range(100))
    return total


class TestProfiler:
    def test_samples_and_attributes_hot_frames(self):
        from repro.core import resolution
        from benchmarks.bench_e14_resolution import build_chain

        _top, bottom = build_chain(12, "ProfChain")
        profiler = SamplingProfiler(interval=0.0005)
        with profiler:
            deadline = time.perf_counter() + 0.25
            while time.perf_counter() < deadline:
                resolution.naive_get_member(bottom, "V")
        assert profiler.samples > 20
        assert profiler.wall_time > 0.2
        # The interpretive read loop's self time lands in core/resolution
        # (with is_permeable in core/inheritance as the other hot leaf).
        hot = [frame for frame, _, _ in profiler.self_times()[:3]]
        assert any("repro/core/" in frame for frame in hot), hot
        all_frames = {
            frame for stack in profiler.stacks for frame in stack
        }
        assert any("core/resolution.py" in f for f in all_frames)

    def test_collapsed_format_and_as_dict(self):
        profiler = SamplingProfiler(interval=0.001)
        with profiler:
            spin(0.06)
        lines = profiler.collapsed()
        assert lines
        for line in lines:
            stack, count = line.rsplit(" ", 1)
            assert int(count) >= 1 and ";" in stack or stack
        doc = profiler.as_dict()
        assert doc["schema"] == PROFILE_SCHEMA_VERSION
        assert doc["samples"] == profiler.samples > 0
        assert sum(s["count"] for s in doc["stacks"]) == doc["samples"]
        assert json.dumps(doc)  # JSON-serialisable

    def test_restartable_and_double_start_rejected(self):
        profiler = SamplingProfiler(interval=0.002)
        profiler.start()
        with pytest.raises(RuntimeError):
            profiler.start()
        spin(0.03)
        profiler.stop()
        first = profiler.samples
        assert first > 0
        with profiler:  # restart accumulates into the same tables
            spin(0.03)
        assert profiler.samples >= first

    def test_render_top_shape(self):
        profiler = SamplingProfiler(interval=0.001)
        with profiler:
            spin(0.05)
        text = profiler.render_top(limit=3)
        assert "samples over" in text and "%" in text
        assert SamplingProfiler(interval=0.001).render_top() == "(no samples)"

    def test_profile_cli_wraps_inner_command(self, tmp_path, capsys):
        bdir = make_bench_dir(tmp_path, {"bench_alpha.py": ADAPTED_MODULE})
        collapsed_path = tmp_path / "stacks.collapsed"
        out_path = tmp_path / "profile.json"
        code = main([
            "profile", "--hz", "2000",
            "--collapsed", str(collapsed_path), "--out", str(out_path),
            "--", "bench", "--quick", "--dir", str(bdir),
            "--root", str(tmp_path), "--no-emit",
        ])
        assert code == 0  # the inner command's exit code passes through
        err = capsys.readouterr().err
        assert "samples over" in err or "(no samples)" in err
        doc = json.loads(out_path.read_text())
        assert doc["schema"] == PROFILE_SCHEMA_VERSION
        assert collapsed_path.exists()

    def test_profile_cli_refuses_recursion_and_empty(self, capsys):
        assert main(["profile", "--", "profile", "check"]) == 1
        assert "refusing" in capsys.readouterr().err
        assert main(["profile", "--"]) == 1


# ---------------------------------------------------------------------------
# the slow-operation log
# ---------------------------------------------------------------------------

class TestSlowLog:
    def test_budget_and_exceeded(self):
        log = SlowLog()
        assert log.budget("query") == DEFAULT_BUDGETS["query"]
        assert log.exceeded("query", 1.0)
        assert not log.exceeded("query", 0.0)
        assert not log.exceeded("unknown-kind", 99.0)

    def test_none_budget_disables_a_kind(self):
        log = SlowLog(budgets={"query": None})
        assert not log.exceeded("query", 99.0)
        assert log.note("query", 99.0) is None
        assert log.recorded == 0
        # Other kinds keep their defaults.
        assert log.budget("txn") == DEFAULT_BUDGETS["txn"]

    def test_ring_bounded_but_recorded_total(self):
        log = SlowLog(budgets={"query": 0.0}, ring_size=4)
        for index in range(10):
            op = log.note("query", 0.01, subject=f"q{index}", rows=index)
            assert op is not None and op.detail["rows"] == index
        assert log.recorded == 10
        assert len(log) == 4
        assert [op.subject for op in log.operations("query")] == [
            "q6", "q7", "q8", "q9",
        ]

    def test_snapshot_and_render(self):
        log = SlowLog(budgets={"expansion": 0.0})
        log.note("expansion", 0.2, subject="Gate#1", objects=31, depth=None)
        snap = log.snapshot()
        assert snap["schema"] == SLOWLOG_SCHEMA_VERSION
        assert snap["recorded"] == 1
        [entry] = snap["operations"]
        assert entry["kind"] == "expansion"
        assert entry["detail"]["objects"] == 31
        assert json.dumps(snap)
        rendered = log.render()
        assert "[expansion]" in rendered and "objects: 31" in rendered
        log.clear()
        assert "empty" in log.render() and log.recorded == 1

    def test_slow_query_captures_explain_plan(self):
        db = gate_database("slowlog-query")
        iface = make_interface(db)
        make_implementation(db, iface)
        db.enable_observability(tracing=False, slow_budgets={"query": 0.0})
        db.query("select Length from GateInterface where Width > 0")
        slowlog = db.obs.slowlog
        assert slowlog.recorded >= 1
        op = slowlog.operations("query")[-1]
        assert op.subject == "select Length from GateInterface where Width > 0"
        assert "access" in op.detail["explain"]  # the EXPLAIN rendering
        assert op.detail["rows"] >= 0 and op.detail["candidates"] >= 1
        # render() re-indents the multi-line plan under an "explain:" key.
        rendered = slowlog.render()
        assert "explain: " in rendered
        assert str(op.detail["explain"]).splitlines()[0] in rendered

    def test_slow_ops_mirror_to_audit_stream(self):
        db = gate_database("slowlog-audit")
        iface = make_interface(db)
        make_implementation(db, iface)
        db.enable_observability(tracing=False, slow_budgets={"query": 0.0})
        db.query("select * from GateInterface")
        mirrored = db.obs.audit.records("slowlog.query")
        assert len(mirrored) == 1
        assert mirrored[0].detail["budget"] == 0.0

    def test_within_budget_records_nothing(self):
        db = gate_database("slowlog-quiet")
        iface = make_interface(db)
        make_implementation(db, iface)
        db.enable_observability(tracing=False)  # default generous budgets
        db.query("select * from GateInterface")
        iface.set_attribute("Length", 11)
        assert db.obs.slowlog.recorded == 0

    def test_slowlog_cli(self, tmp_path, capsys):
        from repro.ddl.paper import GATE_SCHEMA
        from repro.engine import save

        schema = tmp_path / "gates.ddl"
        schema.write_text(GATE_SCHEMA)
        db = gate_database("slowlog-cli")
        iface = make_interface(db)
        make_implementation(db, iface)
        image = tmp_path / "image.json"
        save(db, str(image))

        code = main([
            "slowlog", str(schema), str(image), "--budget-ms", "0",
            "--query", "select * from GateInterface", "--json",
        ])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == SLOWLOG_SCHEMA_VERSION
        assert doc["recorded"] >= 1
        assert any(op["kind"] == "query" for op in doc["operations"])


# ---------------------------------------------------------------------------
# benchmarks/report.py
# ---------------------------------------------------------------------------

class TestReport:
    def test_format_time_units(self):
        from benchmarks import report

        assert report.format_time(5e-9) == "5 ns"
        assert report.format_time(3.2e-6) == "3.2 µs"
        assert report.format_time(4.5e-3) == "4.50 ms"
        assert report.format_time(2.0) == "2.000 s"

    def test_snapshot_stats(self):
        from benchmarks import report

        stats = report._snapshot_stats({
            "counters": {
                "propagation.updates": 4,
                "propagation.fanout_total": 40,
                "cache.hits": 9,
                "cache.misses": 1,
            },
            "histograms": {"propagation.fanout": {"mean": 10.0}},
        })
        assert stats["updates"] == 4
        assert stats["mean fan-out"] == 10.0
        assert stats["cache hit rate"] == 0.9
        empty = report._snapshot_stats({})
        assert empty["updates"] == 0 and empty["cache hit rate"] is None

    def test_e18_registered(self):
        from benchmarks import report

        assert "bench_e18_observatory" in report.EXPERIMENTS
        assert "| E18 |" in report.HEADER

    def test_main_renders_grouped_tables(self, tmp_path, capsys):
        from benchmarks import report

        data = {
            "machine_info": {
                "python_version": "3.12.0",
                "machine": "x86_64",
                "system": "Linux",
            },
            "benchmarks": [
                {
                    "fullname": (
                        "benchmarks/bench_e14_resolution.py"
                        "::TestPlans::test_plan_read[8]"
                    ),
                    "name": "test_plan_read[8]",
                    "stats": {"mean": 2.5e-7, "ops": 4e6, "rounds": 11},
                },
                {
                    "fullname": (
                        "benchmarks/bench_e18_observatory.py"
                        "::TestProfilerTax::test_reads_unprofiled"
                    ),
                    "name": "test_reads_unprofiled",
                    "stats": {"mean": 1.1e-3, "ops": 909.0, "rounds": 7},
                },
            ],
        }
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(data))
        report.main(str(path))
        out = capsys.readouterr().out
        assert "E14" in out and "`plan_read[8]`" in out and "250 ns" in out
        assert "profiler and slow-log overhead" in out
        assert "`reads_unprofiled`" in out
        assert "Run environment: Python 3.12.0" in out
        # No stray sections for experiments absent from the run.
        assert "E17" not in out.replace("| E17 |", "")

    def test_main_with_observability_section(self, tmp_path, capsys):
        from benchmarks import report

        bench = tmp_path / "bench.json"
        bench.write_text(json.dumps({"machine_info": {}, "benchmarks": []}))
        obs = tmp_path / "obs.json"
        obs.write_text(json.dumps({
            "runs": [{
                "label": "fig2",
                "counters": {"propagation.updates": 2},
                "histograms": {},
            }],
            "totals": {"propagation.updates": 2},
        }))
        report.main(str(bench), str(obs))
        out = capsys.readouterr().out
        assert "## Observability metrics" in out
        assert "`fig2`" in out and "**total**" in out
