"""Version graphs (§6).

*"The implementations of an interface can be seen as the versions of a
design object which is represented by the interface."*  A
:class:`VersionGraph` organises those versions:

* **derivation history** — which version was derived from which, "keeping
  track of the design history";
* **alternatives** — several versions derived from the same base,
  "supporting the parallel development of alternatives";
* a **default version** for bottom-up selection (§6 policy 2);
* version **states** through an optional :class:`~repro.versions.states.StateGuard`.

Because interfaces themselves may be versions of a more abstract interface
(the abstraction hierarchy of §4.2), graphs compose into the paper's
"versioned versions": a graph's member can anchor a graph of its own —
see :meth:`VersionGraph.subgraph_of`.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from ..core.objects import DBObject
from ..core.surrogate import Surrogate
from ..errors import VersionError
from .states import StateGuard, VersionState

__all__ = ["VersionGraph"]


class VersionGraph:
    """The versions of one design object, with derivation structure."""

    def __init__(
        self,
        design_object: Optional[DBObject] = None,
        name: str = "",
        guard: Optional[StateGuard] = None,
    ):
        if design_object is None and not name:
            raise VersionError("a version graph needs a design object or a name")
        self.design_object = design_object
        self.name = name or f"versions-of-{design_object.surrogate}"
        self.guard = guard
        self._members: Dict[Surrogate, DBObject] = {}
        self._derived_from: Dict[Surrogate, Surrogate] = {}
        self._derivatives: Dict[Surrogate, List[Surrogate]] = {}
        self._default: Optional[Surrogate] = None
        self._subgraphs: Dict[Surrogate, "VersionGraph"] = {}
        #: Merge parents beyond the primary derived-from edge.
        self._merge_parents: Dict[Surrogate, List[Surrogate]] = {}

    # -- membership -----------------------------------------------------------------

    def add_version(
        self,
        version: DBObject,
        derived_from: Optional[DBObject] = None,
        state: str = VersionState.IN_DESIGN,
    ) -> DBObject:
        """Register a version, optionally as a derivative of an existing one."""
        if version.surrogate in self._members:
            raise VersionError(f"{version!r} is already in the graph")
        if derived_from is not None:
            if derived_from.surrogate not in self._members:
                raise VersionError(
                    f"base {derived_from!r} is not a member of this graph"
                )
        self._members[version.surrogate] = version
        if derived_from is not None:
            self._derived_from[version.surrogate] = derived_from.surrogate
            self._derivatives.setdefault(derived_from.surrogate, []).append(
                version.surrogate
            )
        if self.guard is not None:
            self.guard.set_state(version, state)
        if self._default is None:
            self._default = version.surrogate
        return version

    def remove_version(self, version: DBObject) -> None:
        """Remove a leaf version (derivatives would lose their history)."""
        surrogate = version.surrogate
        if surrogate not in self._members:
            raise VersionError(f"{version!r} is not in the graph")
        if self._derivatives.get(surrogate):
            raise VersionError(
                f"{version!r} has derivatives; remove or re-base them first"
            )
        if self.guard is not None and self.guard.state_of(version) == VersionState.FROZEN:
            raise VersionError(f"{version!r} is frozen and cannot be removed")
        self._members.pop(surrogate)
        base = self._derived_from.pop(surrogate, None)
        if base is not None:
            self._derivatives[base].remove(surrogate)
        if self._default == surrogate:
            self._default = next(iter(self._members), None)

    def members(self) -> List[DBObject]:
        return list(self._members.values())

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, version: object) -> bool:
        return (
            isinstance(version, DBObject) and version.surrogate in self._members
        )

    def __iter__(self) -> Iterator[DBObject]:
        return iter(self.members())

    # -- derivation structure -----------------------------------------------------------

    def derive(self, base: DBObject, new_version: DBObject, state: str = VersionState.IN_DESIGN) -> DBObject:
        """Shorthand: add ``new_version`` derived from ``base``."""
        return self.add_version(new_version, derived_from=base, state=state)

    def base_of(self, version: DBObject) -> Optional[DBObject]:
        surrogate = self._derived_from.get(version.surrogate)
        return self._members.get(surrogate) if surrogate is not None else None

    def derivatives_of(self, version: DBObject) -> List[DBObject]:
        return [
            self._members[s] for s in self._derivatives.get(version.surrogate, [])
        ]

    def alternatives_of(self, version: DBObject) -> List[DBObject]:
        """Siblings: versions derived from the same base (parallel work)."""
        base = self._derived_from.get(version.surrogate)
        if base is None:
            return [
                member
                for member in self.roots()
                if member.surrogate != version.surrogate
            ]
        return [
            self._members[s]
            for s in self._derivatives.get(base, [])
            if s != version.surrogate
        ]

    def history_of(self, version: DBObject) -> List[DBObject]:
        """The derivation path from the initial version to ``version``."""
        if version.surrogate not in self._members:
            raise VersionError(f"{version!r} is not in the graph")
        path = [version]
        current = version.surrogate
        while current in self._derived_from:
            current = self._derived_from[current]
            path.append(self._members[current])
        path.reverse()
        return path

    def is_ancestor(self, ancestor: DBObject, descendant: DBObject) -> bool:
        current: Optional[Surrogate] = descendant.surrogate
        while current is not None:
            if current == ancestor.surrogate:
                return True
            current = self._derived_from.get(current)
        return False

    def roots(self) -> List[DBObject]:
        return [
            member
            for member in self._members.values()
            if member.surrogate not in self._derived_from
        ]

    def leaves(self) -> List[DBObject]:
        return [
            member
            for member in self._members.values()
            if not self._derivatives.get(member.surrogate)
        ]

    def record_merge(self, version: DBObject, other_parent: DBObject) -> None:
        """Record an additional (merge) parent of a version."""
        if version.surrogate not in self._members:
            raise VersionError(f"{version!r} is not in the graph")
        if other_parent.surrogate not in self._members:
            raise VersionError(f"{other_parent!r} is not in the graph")
        self._merge_parents.setdefault(version.surrogate, []).append(
            other_parent.surrogate
        )

    def merge_parents_of(self, version: DBObject) -> List[DBObject]:
        """Merge parents recorded beyond the primary derivation edge."""
        return [
            self._members[s]
            for s in self._merge_parents.get(version.surrogate, [])
            if s in self._members
        ]

    # -- default version (bottom-up selection, §6) ------------------------------------------

    @property
    def default_version(self) -> Optional[DBObject]:
        return self._members.get(self._default) if self._default is not None else None

    def set_default(self, version: DBObject) -> None:
        if version.surrogate not in self._members:
            raise VersionError(f"{version!r} is not in the graph")
        self._default = version.surrogate

    # -- states ------------------------------------------------------------------------

    def state_of(self, version: DBObject) -> Optional[str]:
        return self.guard.state_of(version) if self.guard is not None else None

    def release(self, version: DBObject) -> None:
        if self.guard is None:
            raise VersionError("this graph has no state guard")
        self.guard.release(version)

    def freeze(self, version: DBObject) -> None:
        if self.guard is None:
            raise VersionError("this graph has no state guard")
        self.guard.freeze(version)

    def versions_in_state(self, state: str) -> List[DBObject]:
        """Classification of versions by state (§6: "means for
        classification of versions, e.g. according to their degree of
        correctness")."""
        if self.guard is None:
            return []
        return [
            member
            for member in self._members.values()
            if self.guard.state_of(member) == state
        ]

    # -- versioned versions ---------------------------------------------------------------

    def subgraph_of(self, version: DBObject, create: bool = False) -> Optional["VersionGraph"]:
        """The version graph anchored at ``version`` itself.

        §6: generalizing interfaces to abstraction hierarchies yields
        "versioned versions" — an interface version has implementations,
        i.e. its own graph.  Subgraphs share this graph's state guard.
        """
        if version.surrogate not in self._members:
            raise VersionError(f"{version!r} is not in the graph")
        existing = self._subgraphs.get(version.surrogate)
        if existing is not None or not create:
            return existing
        subgraph = VersionGraph(design_object=version, guard=self.guard)
        self._subgraphs[version.surrogate] = subgraph
        return subgraph

    def __repr__(self) -> str:
        return f"<VersionGraph {self.name} versions={len(self._members)}>"
