"""Static lock-order analysis over the engine's own source.

The dynamic side of PR 9 — :meth:`repro.txn.locks.LockTable.waits_for` —
shows *transaction*-level wait edges at runtime.  This module covers the
layer below: the **mutexes of the engine itself** (`threading.Lock` /
`RLock` / `Condition` attributes and module globals), extracted from the
AST, with every held region and nested acquisition turned into a
lock-order graph.

What it extracts
----------------

* **Lock declarations** — ``self._mutex = threading.Lock()`` in a class
  body (the decl is named ``Class._mutex``) and module-level
  ``GUARD = threading.Lock()`` (named ``module.GUARD``).  A
  ``threading.Condition(self._mutex)`` **aliases** the lock it wraps: the
  engine's ``_cond``/``_mutex`` pair is one lock with two names, so
  ``with self._cond`` inside a ``with self._mutex`` region is correctly
  seen as a re-entry, and ``cond.wait()`` is *not* a blocking call under
  the lock it releases.
* **Held regions** — ``with <lock>:`` bodies and explicit
  ``lock.acquire()`` … ``lock.release()`` spans, tracked per function.
* **Edges** — acquiring B while holding A adds the order edge A → B.
  Call summaries propagate transitively: a function called while holding
  A contributes every lock it (transitively) acquires.  Calls are
  resolved conservatively — ``self.method`` within the class, bare
  ``name()`` within the module — so the graph under-approximates rather
  than hallucinates edges.

What it reports
---------------

* **REP610** — a cycle in the lock-order graph (ABBA deadlock candidate);
* **REP611** — a blocking call (``time.sleep``, ``Thread.join``,
  ``Event.wait``/untimed waits, ``open``…) while a mutex is held;
* **REP612** — a non-reentrant lock acquired while already held on the
  same path (self-deadlock), directly or through a resolved call.

:func:`find_cycles` is deliberately generic — the same cycle finder runs
over the static graph here and over the *runtime* waits-for edge set
(:func:`cycles_in_wait_edges`), so ``repro lint --engine`` and a live
:meth:`~repro.txn.locks.LockTable.waits_for` snapshot are directly
cross-checkable.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Set, Tuple

from .diagnostics import Diagnostic, SourceLocation, make

__all__ = [
    "LockDecl",
    "LockOrderEdge",
    "BlockingCall",
    "ReentrantAcquire",
    "LockOrderReport",
    "analyze_lock_order",
    "find_cycles",
    "cycles_in_wait_edges",
    "default_engine_root",
]

#: Callables considered blocking when invoked under a held mutex.  Names
#: match either the called attribute (``x.join``) or a dotted suffix of
#: the call (``time.sleep``).  ``wait`` is handled specially: a wait on a
#: Condition aliasing a held lock *releases* that lock and is exempt.
_BLOCKING_ATTRS = {"sleep", "join", "wait", "wait_for", "recv", "accept"}
_BLOCKING_NAMES = {"sleep", "open", "input"}


def default_engine_root() -> str:
    """The installed ``repro`` package directory (the default scan root)."""
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


@dataclass(frozen=True)
class LockDecl:
    """One engine mutex: a lock-valued attribute or module global."""

    name: str  #: ``Class.attr`` or ``module.GLOBAL``
    kind: str  #: ``lock`` | ``rlock`` | ``condition``
    path: str
    line: int
    #: For a Condition built over an existing lock: the aliased decl name.
    aliases: Optional[str] = None

    @property
    def reentrant(self) -> bool:
        return self.kind == "rlock"


@dataclass(frozen=True)
class LockOrderEdge:
    """``held`` → ``acquired`` observed at ``path:line`` in ``function``."""

    held: str
    acquired: str
    path: str
    line: int
    function: str
    via: Optional[str] = None  #: callee chain when the edge is transitive


@dataclass(frozen=True)
class BlockingCall:
    held: str
    call: str
    path: str
    line: int
    function: str


@dataclass(frozen=True)
class ReentrantAcquire:
    lock: str
    path: str
    line: int
    function: str
    via: Optional[str] = None


@dataclass
class LockOrderReport:
    """Everything the analyzer learned about the engine's mutexes."""

    locks: Dict[str, LockDecl] = field(default_factory=dict)
    edges: List[LockOrderEdge] = field(default_factory=list)
    cycles: List[Tuple[str, ...]] = field(default_factory=list)
    blocking: List[BlockingCall] = field(default_factory=list)
    reentrant: List[ReentrantAcquire] = field(default_factory=list)
    files_scanned: int = 0

    def diagnostics(self) -> List[Diagnostic]:
        out: List[Diagnostic] = []
        for cycle in self.cycles:
            chain = " -> ".join(cycle + (cycle[0],))
            witness = next(
                (
                    edge
                    for edge in self.edges
                    if edge.held == cycle[0]
                    and edge.acquired == cycle[1 % len(cycle)]
                ),
                None,
            )
            out.append(make(
                "REP610",
                f"locks are ordered inconsistently: {chain}",
                subject=cycle[0],
                location=SourceLocation(witness.path, witness.line)
                if witness is not None else None,
                hint="pick one global order for these mutexes and acquire "
                     "them in it on every path",
            ))
        for call in self.blocking:
            out.append(make(
                "REP611",
                f"{call.call}() while holding {call.held} "
                f"(in {call.function})",
                subject=call.held,
                location=SourceLocation(call.path, call.line),
                hint="move the blocking call outside the held region or "
                     "bound it with a timeout",
            ))
        for acq in self.reentrant:
            via = f" via {acq.via}" if acq.via else ""
            out.append(make(
                "REP612",
                f"{acq.lock} may be acquired while already held{via} "
                f"(in {acq.function})",
                subject=acq.lock,
                location=SourceLocation(acq.path, acq.line),
                hint="use an RLock, or restructure so the inner path is "
                     "only reached with the lock released",
            ))
        return out

    def as_dict(self) -> Dict[str, object]:
        return {
            "locks": sorted(self.locks),
            "edges": sorted(
                {(e.held, e.acquired) for e in self.edges}
            ),
            "cycles": [list(cycle) for cycle in self.cycles],
            "files_scanned": self.files_scanned,
        }


# ---------------------------------------------------------------------------
# generic cycle finding (shared with the runtime waits-for cross-check)
# ---------------------------------------------------------------------------


def find_cycles(graph: Dict[Hashable, Set[Hashable]]) -> List[Tuple[Hashable, ...]]:
    """Every elementary cycle of a small directed graph, canonicalised.

    Iterative DFS from each node; a path returning to its origin is a
    cycle.  Cycles are deduplicated by rotation (the lexically smallest
    node leads), so A→B→A and B→A→B report once.  Exponential in the
    worst case — fine for lock graphs and waits-for snapshots, which have
    tens of nodes.
    """
    cycles: Set[Tuple[Hashable, ...]] = set()
    nodes = sorted(graph, key=repr)
    for origin in nodes:
        stack: List[Tuple[Hashable, Tuple[Hashable, ...]]] = [(origin, (origin,))]
        while stack:
            node, path = stack.pop()
            for succ in sorted(graph.get(node, ()), key=repr):
                if succ == origin:
                    pivot = min(range(len(path)), key=lambda i: repr(path[i]))
                    cycles.add(path[pivot:] + path[:pivot])
                elif succ not in path and len(path) < 16:
                    stack.append((succ, path + (succ,)))
    return sorted(cycles, key=repr)


def cycles_in_wait_edges(
    edges: Iterable[Tuple[int, int]],
) -> List[Tuple[Hashable, ...]]:
    """Cycles in a runtime ``LockTable.waits_for()`` edge set.

    The cross-check: the static analyzer predicts *possible* inversions
    (REP610); a cycle in the live edge set is one actually happening.  A
    non-empty result here on a table whose static graph is acyclic means
    the deadlock is transaction-level (objects locked in both orders),
    which is exactly what the table's own pre-check refuses at runtime.
    """
    graph: Dict[Hashable, Set[Hashable]] = {}
    for waiter, holder in edges:
        graph.setdefault(waiter, set()).add(holder)
    return find_cycles(graph)


# ---------------------------------------------------------------------------
# extraction
# ---------------------------------------------------------------------------


def _call_name(node: ast.AST) -> str:
    """Dotted name of a call target, best effort (``a.b.c`` or ``name``)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return ".".join(reversed(parts))


def _lock_kind(value: ast.expr) -> Optional[str]:
    """``lock``/``rlock``/``condition`` when ``value`` constructs one."""
    if not isinstance(value, ast.Call):
        return None
    name = _call_name(value.func)
    tail = name.rsplit(".", maxsplit=1)[-1]
    if tail == "Lock":
        return "lock"
    if tail == "RLock":
        return "rlock"
    if tail == "Condition":
        return "condition"
    return None


@dataclass
class _Function:
    """Per-function extraction: what it acquires, calls and blocks on."""

    qualname: str  #: ``module.Class.method`` or ``module.function``
    path: str
    #: Locks acquired at function entry depth (decl name -> first line).
    acquires: Dict[str, int] = field(default_factory=dict)
    #: Direct order edges observed inside this function.
    edges: List[LockOrderEdge] = field(default_factory=list)
    #: Calls made while holding locks: (held decls, callee, line).
    held_calls: List[Tuple[Tuple[str, ...], str, int]] = field(default_factory=list)
    blocking: List[BlockingCall] = field(default_factory=list)
    reentrant: List[ReentrantAcquire] = field(default_factory=list)


class _ModuleScanner:
    """Extract lock decls and per-function summaries from one module."""

    def __init__(self, path: str, module_name: str, tree: ast.Module) -> None:
        self.path = path
        self.module = module_name
        self.tree = tree
        self.locks: Dict[str, LockDecl] = {}
        self.functions: Dict[str, _Function] = {}

    # -- pass 1: declarations -------------------------------------------------

    def collect_decls(self) -> None:
        for node in self.tree.body:
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                kind = _lock_kind(node.value)
                if kind is not None and isinstance(target, ast.Name):
                    name = f"{self.module}.{target.id}"
                    self.locks[name] = LockDecl(
                        name, kind, self.path, node.lineno,
                        self._alias_of(node.value, owner=None),
                    )
            elif isinstance(node, ast.ClassDef):
                self._collect_class_decls(node)

    def _collect_class_decls(self, cls: ast.ClassDef) -> None:
        for item in ast.walk(cls):
            if not isinstance(item, ast.Assign) or len(item.targets) != 1:
                continue
            target = item.targets[0]
            kind = _lock_kind(item.value)
            if kind is None or not isinstance(target, ast.Attribute):
                continue
            if not (isinstance(target.value, ast.Name)
                    and target.value.id == "self"):
                continue
            name = f"{cls.name}.{target.attr}"
            self.locks[name] = LockDecl(
                name, kind, self.path, item.lineno,
                self._alias_of(item.value, owner=cls.name),
            )

    def _alias_of(self, value: ast.expr, owner: Optional[str]) -> Optional[str]:
        """``threading.Condition(self._mutex)`` aliases ``Class._mutex``."""
        if not (isinstance(value, ast.Call) and value.args):
            return None
        if _lock_kind(value) != "condition":
            return None
        arg = value.args[0]
        if (owner is not None and isinstance(arg, ast.Attribute)
                and isinstance(arg.value, ast.Name) and arg.value.id == "self"):
            return f"{owner}.{arg.attr}"
        if isinstance(arg, ast.Name):
            return f"{self.module}.{arg.id}"
        return None

    def _resolve(self, expr: ast.expr, owner: Optional[str]) -> Optional[LockDecl]:
        """The decl an expression refers to (``self._mutex`` / ``GUARD``)."""
        if (isinstance(expr, ast.Attribute) and isinstance(expr.value, ast.Name)
                and expr.value.id == "self" and owner is not None):
            decl = self.locks.get(f"{owner}.{expr.attr}")
        elif isinstance(expr, ast.Name):
            decl = self.locks.get(f"{self.module}.{expr.id}")
        else:
            decl = None
        return decl

    def _canonical(self, decl: LockDecl) -> LockDecl:
        """Follow Condition aliasing to the underlying lock."""
        seen = {decl.name}
        while decl.aliases is not None and decl.aliases in self.locks:
            if decl.aliases in seen:  # pragma: no cover - defensive
                break
            seen.add(decl.aliases)
            decl = self.locks[decl.aliases]
        return decl

    # -- pass 2: function summaries -------------------------------------------

    def collect_functions(self) -> None:
        for node in self.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._scan_function(node, owner=None)
            elif isinstance(node, ast.ClassDef):
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        self._scan_function(item, owner=node.name)

    def _scan_function(
        self, fn: ast.FunctionDef | ast.AsyncFunctionDef, owner: Optional[str]
    ) -> None:
        qual = (f"{self.module}.{owner}.{fn.name}" if owner
                else f"{self.module}.{fn.name}")
        summary = _Function(qual, self.path)
        self.functions[qual] = summary
        self._scan_body(fn.body, owner, summary, held=())

    def _note_acquire(
        self,
        decl: LockDecl,
        held: Tuple[str, ...],
        line: int,
        summary: _Function,
    ) -> None:
        canonical = self._canonical(decl)
        if canonical.name in held:
            if not canonical.reentrant:
                summary.reentrant.append(ReentrantAcquire(
                    canonical.name, self.path, line,
                    summary.qualname,
                ))
            return
        for holder in held:
            summary.edges.append(LockOrderEdge(
                holder, canonical.name, self.path, line, summary.qualname,
            ))
        if not held:
            summary.acquires.setdefault(canonical.name, line)

    def _scan_body(
        self,
        body: Sequence[ast.stmt],
        owner: Optional[str],
        summary: _Function,
        held: Tuple[str, ...],
    ) -> None:
        for stmt in body:
            self._scan_stmt(stmt, owner, summary, held)

    def _scan_stmt(
        self,
        stmt: ast.stmt,
        owner: Optional[str],
        summary: _Function,
        held: Tuple[str, ...],
    ) -> None:
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            inner = held
            for item in stmt.items:
                decl = self._resolve(item.context_expr, owner)
                if decl is not None:
                    canonical = self._canonical(decl)
                    self._note_acquire(decl, inner, stmt.lineno, summary)
                    if canonical.name not in inner:
                        inner = inner + (canonical.name,)
                else:
                    self._scan_expr(item.context_expr, owner, summary, held)
            self._scan_body(stmt.body, owner, summary, inner)
            return
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Nested function: analysed at its definition point with the
            # *current* held set — the common case is an inline closure
            # invoked in place (the engine has no lock-crossing closures).
            self._scan_body(stmt.body, owner, summary, held)
            return
        held_here = held
        for node in ast.iter_child_nodes(stmt):
            if isinstance(node, ast.stmt):
                self._scan_stmt(node, owner, summary, held_here)
            else:
                self._scan_expr(node, owner, summary, held_here)

    def _scan_expr(
        self,
        expr: ast.AST,
        owner: Optional[str],
        summary: _Function,
        held: Tuple[str, ...],
    ) -> None:
        for node in ast.walk(expr):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = _call_name(func)
            if isinstance(func, ast.Attribute):
                receiver_decl = self._resolve(func.value, owner)
                if receiver_decl is not None and func.attr == "acquire":
                    self._note_acquire(
                        receiver_decl, held, node.lineno, summary
                    )
                    continue
                if receiver_decl is not None and func.attr in (
                    "release", "notify", "notify_all", "locked",
                ):
                    continue
                if receiver_decl is not None and func.attr == "wait":
                    # Condition.wait releases the aliased mutex: not a
                    # blocking call *under* that lock.
                    canonical = self._canonical(receiver_decl)
                    if canonical.name in held:
                        continue
            if held and self._is_blocking(func, name, owner):
                summary.blocking.append(BlockingCall(
                    held[-1], name or "<call>", self.path, node.lineno,
                    summary.qualname,
                ))
                continue
            if held:
                callee = self._callee_qualname(func, owner)
                if callee is not None:
                    summary.held_calls.append((held, callee, node.lineno))

    def _is_blocking(
        self, func: ast.expr, name: str, owner: Optional[str]
    ) -> bool:
        if isinstance(func, ast.Name):
            return func.id in _BLOCKING_NAMES
        if isinstance(func, ast.Attribute):
            if func.attr not in _BLOCKING_ATTRS:
                return False
            # ``self.anything(...)`` resolves through the call graph
            # instead (it is a method, not a known blocking primitive) —
            # unless the receiver is a known non-aliased Condition/lock,
            # handled by the caller.
            if (isinstance(func.value, ast.Name)
                    and func.value.id == "self"):
                return False
            return True
        return False

    def _callee_qualname(
        self, func: ast.expr, owner: Optional[str]
    ) -> Optional[str]:
        """Resolve ``self.method`` / bare ``name`` to a scanned qualname."""
        if (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "self" and owner is not None):
            return f"{self.module}.{owner}.{func.attr}"
        if isinstance(func, ast.Name):
            return f"{self.module}.{func.id}"
        return None


# ---------------------------------------------------------------------------
# whole-tree analysis
# ---------------------------------------------------------------------------


def _iter_sources(root: str) -> List[Tuple[str, str]]:
    """(path, module name) for every ``.py`` under ``root``, sorted."""
    out: List[Tuple[str, str]] = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(
            d for d in dirnames if not d.startswith((".", "__pycache__"))
        )
        for filename in sorted(filenames):
            if filename.endswith(".py"):
                path = os.path.join(dirpath, filename)
                out.append((path, os.path.splitext(filename)[0]))
    return out


def analyze_lock_order(root: Optional[str] = None) -> LockOrderReport:
    """Scan a source tree and build the lock-order report.

    ``root`` defaults to the installed ``repro`` package, covering
    ``txn/`` and ``engine/`` and every other engine mutex
    (``obs/recorder.py``, ``core/surrogate.py``, the sanitizer itself).
    """
    report = LockOrderReport()
    scanners: List[_ModuleScanner] = []
    functions: Dict[str, _Function] = {}
    for path, module_name in _iter_sources(root or default_engine_root()):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                tree = ast.parse(handle.read(), filename=path)
        except (OSError, SyntaxError):
            continue
        report.files_scanned += 1
        scanner = _ModuleScanner(path, module_name, tree)
        scanner.collect_decls()
        if scanner.locks:
            scanner.collect_functions()
            scanners.append(scanner)
            report.locks.update(scanner.locks)
            functions.update(scanner.functions)

    # Transitive acquisition summaries: what does each function acquire,
    # directly or through resolved calls?  Fixpoint over the call graph.
    acquired: Dict[str, Set[str]] = {
        qual: set(fn.acquires) for qual, fn in functions.items()
    }
    calls: Dict[str, Set[str]] = {
        qual: {callee for _held, callee, _line in fn.held_calls}
        for qual, fn in functions.items()
    }
    # Also propagate through *unheld* calls — a function that merely
    # calls an acquirer is itself an acquirer for ordering purposes.
    # (held_calls only records held-context calls; unheld call edges
    # do not create order edges, so the held-context set suffices.)
    changed = True
    while changed:
        changed = False
        for qual, callees in calls.items():
            bucket = acquired[qual]
            before = len(bucket)
            for callee in callees:
                bucket |= acquired.get(callee, set())
            if len(bucket) != before:
                changed = True

    # Direct edges + transitive edges through held calls.
    for fn in functions.values():
        report.edges.extend(fn.edges)
        report.blocking.extend(fn.blocking)
        report.reentrant.extend(fn.reentrant)
        for held, callee, line in fn.held_calls:
            for lock in sorted(acquired.get(callee, ())):
                if lock in held:
                    decl = report.locks.get(lock)
                    if decl is not None and not decl.reentrant:
                        report.reentrant.append(ReentrantAcquire(
                            lock, fn.path, line, fn.qualname, via=callee,
                        ))
                    continue
                for holder in held:
                    report.edges.append(LockOrderEdge(
                        holder, lock, fn.path, line, fn.qualname, via=callee,
                    ))

    graph: Dict[Hashable, Set[Hashable]] = {}
    for edge in report.edges:
        graph.setdefault(edge.held, set()).add(edge.acquired)
    report.cycles = [
        tuple(str(node) for node in cycle) for cycle in find_cycles(graph)
    ]
    return report
