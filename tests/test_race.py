"""The lockset race sanitizer (Eraser locksets + vector-clock filtering).

Unit tests drive the state machine directly through ``access()``/
``lock_acquired()``; integration tests run real threads against real
engine objects inside ``race.sandbox()`` so seeded races never leak into
a surrounding ``REPRO_TSAN=1`` session.
"""

import threading

from repro.core.surrogate import Surrogate
from repro.engine import Database
from repro.obs import race
from repro.obs.race import RACE_SCHEMA_VERSION, RaceSanitizer
from repro.txn import LockMode, LockTable

from tests.conftest import build_gate_database


def run_threads(*targets):
    threads = [threading.Thread(target=t) for t in targets]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


class TestEraserStates:
    def test_single_thread_is_always_exclusive(self):
        san = RaceSanitizer()
        for i in range(10):
            san.write("addr", label="x")
            san.read("addr")
        assert san.reports == []
        assert san.accesses == 20

    def test_unsynchronised_write_write_reports_once(self):
        san = RaceSanitizer()
        barrier = threading.Barrier(2)

        def writer():
            barrier.wait()
            for _ in range(5):
                san.write("addr", label="x")

        run_threads(writer, writer)
        assert len(san.reports) == 1  # reported once, not per access
        report = san.reports[0]
        assert report.label == "x"
        assert report.write and report.prior_write
        assert report.lockset == ()
        assert report.state == "shared-modified"

    def test_read_only_sharing_never_reports(self):
        san = RaceSanitizer()
        san.write("addr", label="x")  # initialising write, thread A

        def reader():
            san.read("addr")

        # The first cross-thread read is HB-ordered behind the write only
        # via fork/join patching, which a bare RaceSanitizer does not do —
        # but read-only sharing stays in the `shared` state, which Eraser
        # never reports.
        run_threads(reader, reader, reader)
        assert san.reports == []

    def test_shared_escalates_to_shared_modified_on_write(self):
        san = RaceSanitizer()
        san.write("addr", label="x")
        done = threading.Event()

        def reader():
            san.read("addr")
            done.set()

        run_threads(reader)
        assert san.reports == []

        def writer():
            san.write("addr", label="x")

        run_threads(writer)
        assert len(san.reports) == 1
        assert san.reports[0].state == "shared-modified"

    def test_common_lock_suppresses_report(self):
        san = RaceSanitizer()
        mutex = threading.Lock()

        def writer():
            for _ in range(5):
                with mutex:
                    with san.holding("L"):
                        san.write("addr", label="x")

        run_threads(writer, writer)
        assert san.reports == []

    def test_lockset_shrinks_to_intersection(self):
        san = RaceSanitizer()
        m1, m2 = threading.Lock(), threading.Lock()

        def holder_of_both():
            with m1, m2:
                with san.holding("L1"):
                    with san.holding("L2"):
                        san.write("addr", label="x")

        def holder_of_one():
            with m1:
                with san.holding("L1"):
                    san.write("addr", label="x")

        run_threads(holder_of_both, holder_of_one)
        # Intersection {L1,L2} & {L1} = {L1}: still protected, no report.
        assert san.reports == []

    def test_disjoint_locks_report(self):
        # Deterministic A→B→A interleaving: B's write shrinks the
        # candidate lockset to {L2}; A's next write intersects it to {} —
        # the two locks protect nothing in common.
        san = RaceSanitizer()
        a_wrote = threading.Event()
        b_wrote = threading.Event()

        def with_l1():
            with san.holding("L1"):
                san.write("addr", label="x")
            a_wrote.set()
            b_wrote.wait()
            with san.holding("L1"):
                san.write("addr", label="x")

        def with_l2():
            a_wrote.wait()
            with san.holding("L2"):
                san.write("addr", label="x")
            b_wrote.set()

        run_threads(with_l1, with_l2)
        assert len(san.reports) == 1  # distinct locks protect nothing


class TestHappensBefore:
    def test_lock_release_orders_next_acquire(self):
        san = RaceSanitizer()
        first_done = threading.Event()

        def first():
            san.lock_acquired("L")
            san.write("addr", label="x")
            san.lock_released("L")
            first_done.set()

        def second():
            first_done.wait()
            san.lock_acquired("L")
            san.write("addr", label="x")
            san.lock_released("L")

        run_threads(first, second)
        assert san.reports == []

    def test_handoff_receive_orders_threads(self):
        san = RaceSanitizer()
        handed = threading.Event()

        def parent():
            san.write("addr", label="x")
            san.handoff("k")
            handed.set()

        def child():
            handed.wait()
            san.receive("k")
            san.write("addr", label="x")

        run_threads(parent, child)
        # Ordered writes with empty lockset: the vector-clock filter keeps
        # pure Eraser's false positive out.
        assert san.reports == []

    def test_sync_key_serialises_accesses(self):
        san = RaceSanitizer()
        mutex = threading.Lock()

        def writer():
            for _ in range(5):
                with mutex:
                    san.write("addr", label="x", sync="mutex-key")

        run_threads(writer, writer)
        assert san.reports == []

    def test_report_carries_both_stacks(self):
        san = RaceSanitizer()
        barrier = threading.Barrier(2)

        def racing_write():
            barrier.wait()
            for _ in range(5):
                san.write("addr", label="x")

        run_threads(racing_write, racing_write)
        assert len(san.reports) == 1
        report = san.reports[0]
        assert report.stack and report.prior_stack
        assert any("racing_write" in frame for frame in report.stack)
        assert any("racing_write" in frame for frame in report.prior_stack)
        rendered = report.render()
        assert "RACE x" in rendered
        assert "previously accessed here" in rendered


class TestSnapshot:
    def test_schema_and_shape(self):
        san = RaceSanitizer()
        san.write("addr", label="x")
        snap = san.snapshot()
        assert snap["schema"] == RACE_SCHEMA_VERSION == "repro.race/1"
        assert snap["accesses"] == 1
        assert snap["addresses"] == 1
        assert snap["dropped"] == 0
        assert snap["races"] == []
        assert "race sanitizer: 1 access(es)" in san.render()

    def test_shadow_cap_drops_not_grows(self):
        san = RaceSanitizer(max_shadow=4)
        for i in range(10):
            san.write(("cell", i), label="x")
        assert san.snapshot()["addresses"] == 4
        assert san.snapshot()["dropped"] == 6


class TestEnableDisable:
    def test_enabled_by_env(self):
        assert race.enabled_by_env({"REPRO_TSAN": "1"})
        assert race.enabled_by_env({"REPRO_TSAN": "yes"})
        assert not race.enabled_by_env({"REPRO_TSAN": "0"})
        assert not race.enabled_by_env({"REPRO_TSAN": ""})
        assert not race.enabled_by_env({})

    def test_sandbox_broadcasts_and_restores(self):
        from repro.core import slots
        from repro.txn import locks as locks_mod

        previous = race.active()
        with race.sandbox() as san:
            assert race.active() is san
            assert slots.TSAN is san
            assert locks_mod.TSAN is san
        assert race.active() is previous
        assert slots.TSAN is previous
        assert locks_mod.TSAN is previous

    def test_sandboxes_are_isolated(self):
        with race.sandbox() as first:
            first.write("addr", label="x")
        with race.sandbox() as second:
            assert second is not first
            assert second.accesses == 0
            assert second.reports == []

    def test_dark_path_guard_is_none_by_default(self):
        from repro.core import resolution, slots
        from repro.query import indexes, views
        from repro.txn import locks as locks_mod

        if race.active() is not None:
            return  # REPRO_TSAN session: the guards are legitimately live
        for module in (slots, resolution, views, indexes, locks_mod):
            assert module.TSAN is None


class TestEngineIntegration:
    def test_database_sanitize_flag_wires_instrumentation(self):
        with race.sandbox() as san:
            db = Database("race-wired", sanitize=True)
            assert race.active() is san  # enable() reuses the sandbox
            db.catalog  # noqa: B018 — the db exists; now mutate through it
            gate_db = build_gate_database("race-wired-gates")
            iface = gate_db.create_object("GateInterface", Length=4, Width=2)
            iface.set("Length", 9)
            assert san.accesses > 0
            assert san.reports == []

    def test_seeded_engine_race_is_caught_and_locked_twin_quiet(self):
        def rounds(locked):
            with race.sandbox() as san:
                db = build_gate_database("race-seeded")
                table = LockTable()
                iface = db.create_object("GateInterface", Length=1, Width=1)
                surrogate = iface.surrogate
                barrier = threading.Barrier(2)

                def worker(txn_id):
                    barrier.wait()
                    for i in range(40):
                        if locked:
                            table.acquire(
                                txn_id, surrogate, LockMode.X,
                                wait=True, timeout=10.0,
                            )
                        try:
                            iface._attrs["Length"] = i  # lint: allow(REP601)
                        finally:
                            if locked:
                                table.release_all(txn_id)

                run_threads(lambda: worker(1), lambda: worker(2))
                return san

        racy = rounds(locked=False)
        assert len(racy.reports) >= 1
        assert any("cell:Length" in r.label for r in racy.reports)
        clean = rounds(locked=True)
        assert clean.reports == []

    def test_fork_join_edges_keep_sequential_threads_quiet(self):
        with race.sandbox() as san:
            db = build_gate_database("race-forkjoin")
            iface = db.create_object("GateInterface", Length=1, Width=1)

            def child():
                iface.set("Length", 2)

            thread = threading.Thread(target=child)
            thread.start()
            thread.join()
            iface.set("Length", 3)  # parent writes after join: ordered
            assert san.reports == []

    def test_lock_table_traffic_is_clean(self):
        with race.sandbox() as san:
            table = LockTable()
            s = Surrogate(1)

            def worker(txn_id):
                for _ in range(10):
                    table.acquire(txn_id, s, LockMode.X, wait=True,
                                  timeout=10.0)
                    table.release_all(txn_id)

            run_threads(lambda: worker(1), lambda: worker(2))
            assert san.reports == []
            assert san.syncs > 0
