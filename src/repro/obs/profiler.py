"""A stdlib sampling wall-clock profiler (``repro profile``).

A background thread snapshots the target thread's stack via
``sys._current_frames()`` at a fixed interval (default 1 kHz) and
accumulates collapsed call stacks — the deterministic-tracer alternative
(``cProfile``) distorts exactly the nanosecond-scale hot paths this repo
cares about, while sampling costs the profiled thread nothing between
samples.  Output:

* ``collapsed()`` — ``frame;frame;frame count`` lines, the flamegraph
  interchange format (feed to ``flamegraph.pl`` / speedscope as-is);
* ``as_dict()`` — the ``repro.profile/1`` JSON document (stacks, per-frame
  self/total samples, span attribution);
* ``self_times()`` — per-frame *self* attribution (samples where the
  frame was the leaf), the "where is the time actually spent" table.

Span attribution rides the existing :class:`~repro.obs.tracing.Tracer`:
pass one, and every sample also records the tracer's innermost open span
at that instant (a cross-thread read of ``tracer.current`` — racy by
design, which is fine for a statistical profile), so engine spans like
``query.execute`` get wall-clock self-time without any per-span
instrumentation cost.
"""

from __future__ import annotations

import sys
import threading
import time
from collections import Counter
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["PROFILE_SCHEMA_VERSION", "SamplingProfiler", "frame_label"]

PROFILE_SCHEMA_VERSION = "repro.profile/1"


def frame_label(code) -> str:
    """``path/to/file.py:function`` with the path shortened to the package.

    Paths inside the ``repro`` package render as ``repro/<sub>/file.py``
    so labels are stable across checkouts and virtualenvs.
    """
    filename = code.co_filename.replace("\\", "/")
    for anchor in ("/repro/", "/benchmarks/"):
        index = filename.rfind(anchor)
        if index != -1:
            filename = filename[index + 1 :]
            break
    else:
        filename = filename.rsplit("/", 1)[-1]
    return f"{filename}:{code.co_name}"


class SamplingProfiler:
    """Sample one thread's stack from a daemon thread at ``interval`` s.

    Use as a context manager or with explicit :meth:`start` /
    :meth:`stop`.  The profiled thread defaults to the one that calls
    ``start()``.  ``max_depth`` bounds the recorded stack (deep recursion
    keeps its leaf; the root side is truncated).
    """

    def __init__(
        self,
        interval: float = 0.001,
        tracer=None,
        max_depth: int = 128,
    ):
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.interval = interval
        self.tracer = tracer
        self.max_depth = max_depth
        #: stack tuple (root ... leaf) -> samples
        self.stacks: Counter = Counter()
        #: span name -> samples (only when a tracer is attached)
        self.span_samples: Counter = Counter()
        self.samples = 0
        self.started: Optional[float] = None
        self.wall_time = 0.0
        self._target_id: Optional[int] = None
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()

    # -- lifecycle ---------------------------------------------------------------

    def start(self, target_thread: Optional[threading.Thread] = None) -> "SamplingProfiler":
        if self._thread is not None:
            raise RuntimeError("profiler already running")
        self._target_id = (
            target_thread.ident if target_thread is not None else threading.get_ident()
        )
        self._stop.clear()
        self.started = time.perf_counter()
        self._thread = threading.Thread(
            target=self._sample_loop, name="repro-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> "SamplingProfiler":
        if self._thread is None:
            return self
        self._stop.set()
        self._thread.join()
        self._thread = None
        if self.started is not None:
            self.wall_time += time.perf_counter() - self.started
            self.started = None
        return self

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False

    def profile(self, fn, *args, **kwargs):
        """Run ``fn`` under the profiler; returns ``fn``'s result."""
        self.start()
        try:
            return fn(*args, **kwargs)
        finally:
            self.stop()

    # -- the sampler -------------------------------------------------------------

    def _sample_loop(self) -> None:
        target_id = self._target_id
        tracer = self.tracer
        interval = self.interval
        stacks = self.stacks
        wait = self._stop.wait
        while not wait(interval):
            frame = sys._current_frames().get(target_id)
            if frame is None:  # target thread exited
                break
            labels: List[str] = []
            depth = 0
            while frame is not None and depth < self.max_depth:
                labels.append(frame_label(frame.f_code))
                frame = frame.f_back
                depth += 1
            if not labels:  # pragma: no cover - empty stack
                continue
            labels.reverse()  # root ... leaf
            stacks[tuple(labels)] += 1
            self.samples += 1
            if tracer is not None:
                span = tracer.current  # racy cross-thread read, by design
                if span is not None:
                    self.span_samples[span.name] += 1

    # -- reports -----------------------------------------------------------------

    def self_times(self) -> List[Tuple[str, int, float]]:
        """``(frame, samples, seconds)`` by self time (leaf samples), descending."""
        leaves: Counter = Counter()
        for stack, count in self.stacks.items():
            leaves[stack[-1]] += count
        interval = self.interval
        return [
            (frame, count, count * interval)
            for frame, count in leaves.most_common()
        ]

    def total_times(self) -> List[Tuple[str, int, float]]:
        """``(frame, samples, seconds)`` counting every appearance on a stack."""
        totals: Counter = Counter()
        for stack, count in self.stacks.items():
            for frame in set(stack):  # once per stack: total, not cumulative
                totals[frame] += count
        interval = self.interval
        return [
            (frame, count, count * interval)
            for frame, count in totals.most_common()
        ]

    def top_frame(self) -> Optional[str]:
        """The frame with the most self time, or None without samples."""
        table = self.self_times()
        return table[0][0] if table else None

    def per_span(self) -> List[Tuple[str, int, float]]:
        """``(span name, samples, seconds)`` attribution, descending."""
        interval = self.interval
        return [
            (name, count, count * interval)
            for name, count in self.span_samples.most_common()
        ]

    def collapsed(self) -> List[str]:
        """Flamegraph-ready collapsed stacks: ``root;...;leaf count``."""
        return [
            ";".join(stack) + f" {count}"
            for stack, count in sorted(
                self.stacks.items(), key=lambda item: (-item[1], item[0])
            )
        ]

    def as_dict(self) -> Dict[str, Any]:
        """The ``repro.profile/1`` JSON document."""
        return {
            "schema": PROFILE_SCHEMA_VERSION,
            "interval": self.interval,
            "samples": self.samples,
            "wall_time": self.wall_time,
            "stacks": [
                {"frames": list(stack), "count": count}
                for stack, count in sorted(
                    self.stacks.items(), key=lambda item: (-item[1], item[0])
                )
            ],
            "self": [
                {"frame": frame, "samples": count, "seconds": seconds}
                for frame, count, seconds in self.self_times()
            ],
            "spans": [
                {"span": name, "samples": count, "seconds": seconds}
                for name, count, seconds in self.per_span()
            ],
        }

    def render_top(self, limit: int = 15) -> str:
        """An aligned text table of the hottest frames by self time."""
        rows = self.self_times()[:limit]
        if not rows:
            return "(no samples)"
        total = self.samples or 1
        width = max(len(frame) for frame, _, _ in rows)
        lines = [
            f"{self.samples} samples over {self.wall_time:.2f}s "
            f"at {1 / self.interval:.0f} Hz"
        ]
        for frame, count, seconds in rows:
            lines.append(
                f"  {frame.ljust(width)}  {count:>6}  "
                f"{100 * count / total:5.1f}%  {seconds:8.3f}s"
            )
        spans = self.per_span()
        if spans:
            lines.append("per-span self time:")
            span_width = max(len(name) for name, _, _ in spans)
            for name, count, seconds in spans[:limit]:
                lines.append(
                    f"  {name.ljust(span_width)}  {count:>6}  "
                    f"{100 * count / total:5.1f}%  {seconds:8.3f}s"
                )
        return "\n".join(lines)

    def __repr__(self) -> str:
        state = "running" if self._thread is not None else "stopped"
        return (
            f"<SamplingProfiler {state} samples={self.samples} "
            f"interval={self.interval}>"
        )
