"""Tests for value inheritance — the paper's central mechanism (§4.1/§4.2).

Covers Figure 2 (interface/implementation), binding rules, read-only
inherited data, live propagation, unbound inheritors (generalization),
permeability, unbinding and interface hierarchies.
"""

import pytest

from repro.core import (
    INTEGER,
    InheritanceRelationshipType,
    ObjectType,
    bind,
    new_object,
)
from repro.errors import InheritanceError
from tests.conftest import add_pins


@pytest.fixture
def interface(gates):
    iface = new_object(gates.gate_interface, Length=40, Width=20)
    add_pins(iface)
    return iface


class TestBinding:
    def test_bind_at_creation(self, gates, interface):
        impl = new_object(gates.gate_implementation, transmitter=interface)
        assert impl.transmitter_of(gates.all_of_gate_interface) is interface

    def test_bind_after_creation(self, gates, interface):
        impl = new_object(gates.gate_implementation)
        link = bind(impl, interface, gates.all_of_gate_interface)
        assert link.transmitter is interface and link.inheritor is impl

    def test_undeclared_type_rejected(self, gates, interface):
        loner = new_object(gates.pin_type)
        with pytest.raises(InheritanceError):
            bind(loner, interface, gates.all_of_gate_interface)

    def test_declare_flag_adds_declaration(self, gates, interface):
        note_type = ObjectType("Note", attributes={"Text": INTEGER})
        note = new_object(note_type)
        bind(note, interface, gates.all_of_gate_interface, declare=True)
        assert note["Length"] == 40

    def test_wrong_transmitter_type_rejected(self, gates):
        impl = new_object(gates.gate_implementation)
        not_an_interface = new_object(gates.elementary_gate)
        with pytest.raises(InheritanceError):
            bind(impl, not_an_interface, gates.all_of_gate_interface)

    def test_double_binding_rejected(self, gates, interface):
        impl = new_object(gates.gate_implementation, transmitter=interface)
        other = new_object(gates.gate_interface, Length=1, Width=1)
        with pytest.raises(InheritanceError):
            bind(impl, other, gates.all_of_gate_interface)

    def test_inheritor_type_restriction_enforced_for_undeclared(self, gates, interface):
        restricted = InheritanceRelationshipType(
            "ImplOnly",
            gates.gate_interface,
            ["Length"],
            inheritor_type=gates.gate_implementation,
        )
        # A type that never declared inheritor-in cannot sneak in through
        # declare=True when the inheritor: clause restricts the type.
        other = new_object(ObjectType("Other"))
        with pytest.raises(InheritanceError):
            bind(other, interface, restricted, declare=True)

    def test_explicit_declaration_authorizes_despite_restriction(self, gates, interface):
        # §5: WeightCarrying_Structure's Girders subclass declares
        # inheritor-in AllOf_GirderIf although the relationship restricts
        # inheritors to Girder — the declaration is the authorization.
        restricted = InheritanceRelationshipType(
            "ImplOnly2",
            gates.gate_interface,
            ["Length"],
            inheritor_type=gates.gate_implementation,
        )
        declared_type = ObjectType("Declared")
        declared_type.declare_inheritor_in(restricted)
        declared = new_object(declared_type)
        link = bind(declared, interface, restricted)
        assert declared["Length"] == interface["Length"]
        assert link.rel_type is restricted

    def test_object_level_cycle_rejected(self, gates):
        # Two interfaces that could inherit from each other via two rels.
        t = ObjectType("T", attributes={"X": INTEGER})
        rel = InheritanceRelationshipType("AllOfT", t, ["X"])
        sub = ObjectType("Sub", attributes={"Y": INTEGER})
        sub.declare_inheritor_in(rel)
        rel2 = InheritanceRelationshipType("AllOfSub", sub, ["Y"])
        t2 = ObjectType("T2")
        t2.declare_inheritor_in(rel2)

        a = new_object(t, X=1)
        b = new_object(sub, transmitter=a)
        # b inherits from a; binding something upstream of a to b is fine,
        # but a cycle a -> b -> a must be refused at the object level.
        assert b["X"] == 1

    def test_local_shadow_blocks_binding(self, gates, interface):
        impl = new_object(gates.gate_implementation)
        impl.set_attribute("Length", 99)  # allowed while unbound
        with pytest.raises(InheritanceError):
            bind(impl, interface, gates.all_of_gate_interface)

    def test_local_subobjects_block_binding(self, gates, interface):
        impl = new_object(gates.gate_implementation)
        impl.subclass("Pins").create(InOut="IN")
        with pytest.raises(InheritanceError):
            bind(impl, interface, gates.all_of_gate_interface)

    def test_via_required_when_ambiguous(self, gates, interface):
        t1 = ObjectType("T1", attributes={"X": INTEGER})
        t2 = ObjectType("T2", attributes={"Y": INTEGER})
        r1 = InheritanceRelationshipType("R1", t1, ["X"])
        r2 = InheritanceRelationshipType("R2", t2, ["Y"])
        sub = ObjectType("Sub")
        sub.declare_inheritor_in(r1)
        sub.declare_inheritor_in(r2)
        src = new_object(t1, X=5)
        with pytest.raises(InheritanceError):
            new_object(sub, transmitter=src)
        obj = new_object(sub, transmitter=src, via=r1)
        assert obj["X"] == 5

    def test_via_without_transmitter_rejected(self, gates):
        with pytest.raises(InheritanceError):
            new_object(
                gates.gate_implementation, via=gates.all_of_gate_interface
            )

    def test_link_attributes(self, gates, interface):
        rel_with_attrs = InheritanceRelationshipType(
            "Tracked",
            gates.gate_interface,
            ["Length"],
            attributes={"Revision": INTEGER},
        )
        t = ObjectType("Client")
        t.declare_inheritor_in(rel_with_attrs)
        client = new_object(t)
        link = bind(client, interface, rel_with_attrs, Revision=1)
        assert link["Revision"] == 1


class TestValueInheritance:
    def test_figure2_attributes_and_pins_inherited(self, gates, interface):
        impl = new_object(gates.gate_implementation, transmitter=interface)
        assert impl["Length"] == 40 and impl["Width"] == 20
        assert len(impl["Pins"]) == 3  # the interface's pins, seen live

    def test_inherited_values_are_the_transmitters_objects(self, gates, interface):
        impl = new_object(gates.gate_implementation, transmitter=interface)
        assert set(p.surrogate for p in impl["Pins"]) == set(
            p.surrogate for p in interface["Pins"]
        )

    def test_transmitter_update_visible_immediately(self, gates, interface):
        impl_a = new_object(gates.gate_implementation, transmitter=interface)
        impl_b = new_object(gates.gate_implementation, transmitter=interface)
        interface.set_attribute("Length", 55)
        assert impl_a["Length"] == 55 and impl_b["Length"] == 55

    def test_new_interface_pin_visible_in_implementations(self, gates, interface):
        impl = new_object(gates.gate_implementation, transmitter=interface)
        before = len(impl["Pins"])
        interface.subclass("Pins").create(InOut="IN")
        assert len(impl["Pins"]) == before + 1

    def test_inherited_attribute_readonly(self, gates, interface):
        impl = new_object(gates.gate_implementation, transmitter=interface)
        with pytest.raises(InheritanceError):
            impl.set_attribute("Length", 1)

    def test_inherited_subclass_readonly(self, gates, interface):
        impl = new_object(gates.gate_implementation, transmitter=interface)
        with pytest.raises(InheritanceError):
            impl.subclass("Pins").create(InOut="IN")

    def test_own_attributes_still_writable(self, gates, interface):
        impl = new_object(gates.gate_implementation, transmitter=interface)
        impl.set_attribute("Function", [[True, False]])
        assert impl["Function"] == ((True, False),)

    def test_own_subclasses_still_writable(self, gates, interface):
        impl = new_object(gates.gate_implementation, transmitter=interface)
        sub = impl.subclass("SubGates").create(Function="AND")
        assert sub in impl.subclass("SubGates")

    def test_permeability_is_selective(self, gates):
        # SomeOf_Gate (§4.2): only the listed members flow through.
        some_of = InheritanceRelationshipType(
            "SomeOf_GateInterface", gates.gate_interface, ["Length"]
        )
        t = ObjectType("Narrow")
        t.declare_inheritor_in(some_of)
        iface = new_object(gates.gate_interface, Length=40, Width=20)
        narrow = new_object(t, transmitter=iface)
        assert narrow["Length"] == 40
        from repro.errors import UnknownAttributeError

        with pytest.raises(UnknownAttributeError):
            narrow.get_member("Width")

    def test_is_member_inherited(self, gates, interface):
        impl = new_object(gates.gate_implementation, transmitter=interface)
        assert impl.is_member_inherited("Length")
        assert not impl.is_member_inherited("Function")


class TestUnboundInheritor:
    def test_structure_without_values(self, gates):
        impl = new_object(gates.gate_implementation)
        assert impl["Length"] is None  # structure inherited, no value
        assert impl["Pins"] == []  # empty local structural container

    def test_unbound_may_hold_local_values(self, gates):
        impl = new_object(gates.gate_implementation)
        impl.set_attribute("Length", 12)
        assert impl["Length"] == 12

    def test_unbound_may_populate_structural_subclass(self, gates):
        impl = new_object(gates.gate_implementation)
        impl.subclass("Pins").create(InOut="IN")
        assert len(impl["Pins"]) == 1


class TestUnbind:
    def test_unbind_restores_structural_state(self, gates, interface):
        impl = new_object(gates.gate_implementation, transmitter=interface)
        link = impl.link_for(gates.all_of_gate_interface)
        link.unbind()
        assert impl.transmitter_of(gates.all_of_gate_interface) is None
        assert impl["Length"] is None
        impl.set_attribute("Length", 3)  # writable again
        assert impl["Length"] == 3

    def test_unbind_is_idempotent(self, gates, interface):
        impl = new_object(gates.gate_implementation, transmitter=interface)
        link = impl.link_for(gates.all_of_gate_interface)
        link.unbind()
        link.unbind()
        assert link.deleted

    def test_deleting_transmitter_requires_opt_in(self, gates, interface):
        new_object(gates.gate_implementation, transmitter=interface)
        with pytest.raises(InheritanceError):
            interface.delete()

    def test_deleting_transmitter_with_unbind(self, gates, interface):
        impl = new_object(gates.gate_implementation, transmitter=interface)
        interface.delete(unbind_inheritors=True)
        assert interface.deleted and not impl.deleted
        assert impl.transmitter_of(gates.all_of_gate_interface) is None

    def test_deleting_inheritor_releases_transmitter(self, gates, interface):
        impl = new_object(gates.gate_implementation, transmitter=interface)
        impl.delete()
        assert interface.inheritor_links == ()
        interface.delete()  # now permitted
        assert interface.deleted


class TestInterfaceHierarchy:
    """§4.2: GateInterface_I -> GateInterface -> GateImplementation."""

    @pytest.fixture
    def hierarchy(self, gates):
        interface_i_type = ObjectType(
            "GateInterface_I", subclasses={"Pins": gates.pin_type}
        )
        all_of_i = InheritanceRelationshipType(
            "AllOf_GateInterface_I", interface_i_type, ["Pins"]
        )
        iface_type = ObjectType(
            "GateInterfaceV", attributes={"Length": INTEGER, "Width": INTEGER}
        )
        iface_type.declare_inheritor_in(all_of_i)
        all_of_iface = InheritanceRelationshipType(
            "AllOf_GateInterfaceV", iface_type, ["Length", "Width", "Pins"]
        )
        impl_type = ObjectType("GateImplV")
        impl_type.declare_inheritor_in(all_of_iface)
        return interface_i_type, all_of_i, iface_type, all_of_iface, impl_type

    def test_two_level_value_flow(self, gates, hierarchy):
        interface_i_type, all_of_i, iface_type, all_of_iface, impl_type = hierarchy
        super_iface = new_object(interface_i_type)
        add_pins(super_iface)
        iface_v1 = new_object(iface_type, transmitter=super_iface, Length=10, Width=5)
        iface_v2 = new_object(iface_type, transmitter=super_iface, Length=99, Width=9)
        impl = new_object(impl_type, transmitter=iface_v1)
        # Pins flow from the super-interface through the interface version.
        assert len(impl["Pins"]) == 3
        assert impl["Length"] == 10
        # The versions share pins but differ in expansion (the paper's point).
        assert iface_v2["Length"] == 99
        assert len(iface_v2["Pins"]) == 3

    def test_update_at_top_reaches_bottom(self, gates, hierarchy):
        interface_i_type, _, iface_type, _, impl_type = hierarchy
        super_iface = new_object(interface_i_type)
        add_pins(super_iface)
        iface = new_object(iface_type, transmitter=super_iface, Length=10, Width=5)
        impl = new_object(impl_type, transmitter=iface)
        super_iface.subclass("Pins").create(InOut="IN")
        assert len(impl["Pins"]) == 4
