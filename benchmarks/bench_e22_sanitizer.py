"""E22 — pricing the race sanitizer, and proving the dark path is free.

The PR-10 sanitizer instruments every hot mutation site (TypeStore
writes, view/index maintenance, epoch bumps, the lock table) behind a
module-level ``TSAN`` guard.  The zero-cost-dark contract is the whole
design: when the guard is ``None`` the only cost is one global load and
one ``is None`` test, so production never pays for the instrumentation.
This experiment prices both sides:

* **update dark / update sanitized** — the Figure-2 propagation loop
  with the guard dark vs. inside :func:`repro.obs.race.sandbox`.  The
  sanitized path captures a stack per shadow access, so a 10–100x factor
  is expected and acceptable; what matters is the *dark* number, which
  ``repro bench --compare`` holds to the BENCH_0004 baseline (the E14–E21
  suites run with the guard dark too, so the whole trajectory gates the
  parity claim);
* **lock round-trip dark / sanitized** — one uncontended
  ``acquire``/``release_all`` pair: the lock table is the chattiest
  instrumented site (state write + HB edge per grant and release);
* **contended grant sanitized** — E21's blocking round under the
  sanitizer: parked waiters, waits-for edges, fork/join HB patching and
  all — the worst realistic case, and it must stay race-free.

The pytest variant additionally asserts the dark guard really is dark
(enable→disable leaves the modules with ``TSAN is None`` and the same
min-of-k cost within noise) and that the sanitized runs observed
accesses without reporting races.
"""

import time

from repro.engine import Database
from repro.obs import race
from repro.txn import LockMode, LockTable
from repro.workloads import gate_database, make_implementation, make_interface

from benchmarks.bench_e21_contention import run_contention_round

FANOUT = 10
UPDATES = 200


def _workload_db(name="e22-bench"):
    db = gate_database(name)
    iface = make_interface(db)
    for _ in range(FANOUT):
        make_implementation(db, iface)
    return db, iface


def _update_batch(iface, counter):
    def run():
        for _ in range(UPDATES):
            iface.set_attribute("Length", 10 + next(counter) % 50)
    return run


def _lock_roundtrip(table, surrogate):
    def run():
        for txn in range(50):
            table.acquire(txn, surrogate, LockMode.X, wait=True, timeout=10.0)
            table.release_all(txn)
    return run


def _min_of(fn, rounds=7):
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


class TestDarkPathParity:
    def test_guard_is_restored_after_enable_disable(self):
        from repro.core import resolution, slots
        from repro.query import indexes, views
        from repro.txn import locks as locks_mod

        modules = (slots, resolution, views, indexes, locks_mod)
        previous = race.active()
        with race.sandbox():
            assert all(m.TSAN is not None for m in modules)
        assert all(m.TSAN is previous for m in modules)

    def test_dark_cost_unchanged_by_past_enablement(self):
        """Enable→disable must leave the hot path at its original cost.

        Min-of-7 with a generous 3x bound: this guards against the
        sanitizer leaving patched code or live guards behind, not
        against scheduler noise.
        """
        if race.active() is not None:
            return  # REPRO_TSAN session: there is no dark path to price
        _db, iface = _workload_db("e22-before")
        before = _min_of(_update_batch(iface, iter(range(10**9))))
        with race.sandbox():
            _db2, iface2 = _workload_db("e22-during")
            _update_batch(iface2, iter(range(10**9)))()
        _db3, iface3 = _workload_db("e22-after")
        after = _min_of(_update_batch(iface3, iter(range(10**9))))
        assert after < before * 3.0 + 1e-4

    def test_sanitized_updates_observe_and_stay_clean(self):
        with race.sandbox() as sanitizer:
            _db, iface = _workload_db("e22-sanitized")
            _update_batch(iface, iter(range(10**9)))()
            assert sanitizer.accesses > 0
            assert sanitizer.reports == []

    def test_sanitized_lock_table_stays_clean(self):
        with race.sandbox() as sanitizer:
            db = Database("e22-locks")
            table = LockTable()
            _lock_roundtrip(table, db.surrogates.fresh())()
            assert sanitizer.syncs > 0
            assert sanitizer.reports == []

    def test_contended_round_under_sanitizer_is_race_free(self):
        with race.sandbox() as sanitizer:
            db = Database("e22-contended", observe=True)
            table = LockTable(obs=db.obs)
            run_contention_round(
                table, db.surrogates.fresh(), waiters=2, hold=0.002
            )
            assert sanitizer.reports == []


def register(suite):
    """repro-bench adapter (see :mod:`repro.obs.bench`)."""
    waiters = 2 if suite.quick else 4

    @suite.case("update_dark")
    def update_dark_case():
        _db, iface = _workload_db("e22-dark")
        return _update_batch(iface, iter(range(10**9)))

    @suite.case("update_sanitized")
    def update_sanitized_case():
        # The sandbox must wrap the *timed* call, not just setup: enter
        # per invocation so the run prices guard checks + shadow lookups.
        _db, iface = _workload_db("e22-san")
        counter = iter(range(10**9))

        def timed():
            with race.sandbox():
                _update_batch(iface, counter)()

        return timed

    @suite.case("lock_roundtrip_dark")
    def lock_dark_case():
        db = Database("e22-lock-dark")
        table = LockTable()
        return _lock_roundtrip(table, db.surrogates.fresh())

    @suite.case("lock_roundtrip_sanitized")
    def lock_sanitized_case():
        db = Database("e22-lock-san")
        table = LockTable()
        surrogate = db.surrogates.fresh()

        def timed():
            with race.sandbox():
                _lock_roundtrip(table, surrogate)()

        return timed

    @suite.case(f"contended_grant_sanitized[{waiters}]")
    def contended_case():
        db = Database("e22-contended-bench", observe=True)
        table = LockTable(obs=db.obs)
        surrogates = db.surrogates

        def timed():
            with race.sandbox():
                run_contention_round(
                    table, surrogates.fresh(), waiters=waiters, hold=0.002
                )

        return timed
