"""Exception hierarchy for the repro object database.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch one base class.  The hierarchy mirrors the paper's
subsystems: schema definition, domain validation, integrity constraints,
value inheritance, versions, transactions and the DDL/expression parsers.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by the repro library."""


# ---------------------------------------------------------------------------
# Schema / type-system errors
# ---------------------------------------------------------------------------

class SchemaError(ReproError):
    """A type definition is malformed or inconsistent."""


class UnknownTypeError(SchemaError):
    """A referenced object/relationship type is not in the catalog."""


class DuplicateTypeError(SchemaError):
    """A type with the same name is already registered."""


class UnknownDomainError(SchemaError):
    """A referenced domain is not in the catalog."""


# ---------------------------------------------------------------------------
# Value / domain errors
# ---------------------------------------------------------------------------

class DomainError(ReproError):
    """A value does not belong to the attribute's domain."""


class UnknownAttributeError(ReproError):
    """An attribute (or subclass) name does not exist on the object/type."""


class ObjectDeletedError(ReproError):
    """The object was deleted (e.g. with its enclosing complex object)."""


# ---------------------------------------------------------------------------
# Integrity and inheritance-relationship errors
# ---------------------------------------------------------------------------

class ConstraintViolation(ReproError):
    """An integrity constraint defined with a type failed.

    Attributes
    ----------
    constraint:
        The source text (or description) of the violated constraint.
    subject:
        The object the constraint was checked against, when known.
    """

    def __init__(self, message: str, constraint: str = "", subject=None):
        super().__init__(message)
        self.constraint = constraint
        self.subject = subject


class InheritanceError(ReproError):
    """Misuse of an inheritance relationship.

    Raised for writes to inherited (read-only) data in an inheritor,
    binding an inheritor to a transmitter of the wrong type, or declaring
    an ``inheriting:`` clause that names data the transmitter type does
    not define.
    """


class PermeabilityError(InheritanceError):
    """The requested attribute is not permeable through the relationship."""


# ---------------------------------------------------------------------------
# Version-management errors
# ---------------------------------------------------------------------------

class VersionError(ReproError):
    """Illegal operation on a version graph (cycles, frozen versions…)."""


class SelectionError(VersionError):
    """A generic relationship could not select a component version."""


# ---------------------------------------------------------------------------
# Transaction / concurrency errors
# ---------------------------------------------------------------------------

class TransactionError(ReproError):
    """Illegal transaction state transition or usage."""


class LockConflictError(TransactionError):
    """A lock request conflicts with locks held by another transaction."""

    def __init__(self, message: str, holder=None, surrogate=None):
        super().__init__(message)
        self.holder = holder
        self.surrogate = surrogate


class DeadlockError(LockConflictError):
    """Granting the request would create a wait-for cycle."""


class LockTimeoutError(LockConflictError):
    """A blocking lock request waited past its timeout."""


class AccessDeniedError(TransactionError):
    """The access-control manager refused the operation or lock mode."""


# ---------------------------------------------------------------------------
# Parser errors
# ---------------------------------------------------------------------------

class ExprSyntaxError(ReproError):
    """The constraint-expression parser rejected its input."""

    def __init__(self, message: str, position: int = -1, line: int = -1):
        super().__init__(message)
        self.position = position
        self.line = line


class ExprEvaluationError(ReproError):
    """A constraint expression failed at evaluation time.

    Raised for aggregates over empty collections (``min``/``max``/``avg``),
    arithmetic on non-numeric operands and unresolvable mandatory names.
    """


class DDLSyntaxError(SchemaError):
    """The schema DDL parser rejected its input."""

    def __init__(self, message: str, line: int = -1, column: int = -1):
        super().__init__(message)
        self.line = line
        self.column = column


class QueryError(ReproError):
    """A query or navigation request was malformed."""


class PersistenceError(ReproError):
    """The database image could not be saved or loaded."""
