"""Nestable tracing spans with a cheap disabled path.

A :class:`Tracer` hands out :class:`Span` context managers::

    with tracer.span("propagate", object=str(obj.surrogate)):
        ...
        with tracer.span("invalidate"):
            ...

When the tracer is disabled, :meth:`Tracer.span` returns a shared no-op
singleton — no allocation, no clock read — so instrumented code can leave
the calls in place unconditionally.  When enabled, spans record name,
parent, wall-clock duration (``time.perf_counter``) and free-form
attributes, forming a forest that :func:`format_span_tree` renders for the
CLI's ``--trace`` flag.

The span store is bounded (``max_spans``); once full, further spans still
time correctly for their parents' sake but are counted in
:attr:`Tracer.dropped` instead of being retained.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Iterator, List, Optional

__all__ = ["Span", "Tracer", "NULL_SPAN", "format_span_tree"]


class _NullSpan:
    """Shared do-nothing span for disabled tracers."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attributes: Any) -> "_NullSpan":
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<NullSpan>"


NULL_SPAN = _NullSpan()


class Span:
    """One timed, attributed section of work."""

    __slots__ = ("tracer", "name", "attributes", "parent", "children",
                 "start", "duration", "_retained")

    def __init__(self, tracer: "Tracer", name: str, attributes: Dict[str, Any]):
        self.tracer = tracer
        self.name = name
        self.attributes = attributes
        self.parent: Optional[Span] = None
        self.children: List[Span] = []
        self.start = 0.0
        #: Seconds; None while the span is still open.
        self.duration: Optional[float] = None
        self._retained = False

    def set(self, **attributes: Any) -> "Span":
        """Attach or update attributes on an open (or closed) span."""
        self.attributes.update(attributes)
        return self

    def __enter__(self) -> "Span":
        tracer = self.tracer
        stack = tracer._stack
        self.parent = stack[-1] if stack else None
        if tracer._count < tracer.max_spans:
            tracer._count += 1
            self._retained = True
            if self.parent is not None:
                self.parent.children.append(self)
            else:
                tracer.roots.append(self)
        else:
            tracer.dropped += 1
        stack.append(self)
        self.start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration = time.perf_counter() - self.start
        stack = self.tracer._stack
        if stack and stack[-1] is self:
            stack.pop()
        else:  # pragma: no cover - unbalanced exit, be forgiving
            try:
                stack.remove(self)
            except ValueError:
                pass
        if exc_type is not None:
            self.attributes.setdefault("error", exc_type.__name__)
        return False

    def __repr__(self) -> str:
        timing = f"{self.duration * 1e6:.1f}us" if self.duration is not None else "open"
        return f"<Span {self.name} {timing} children={len(self.children)}>"


class Tracer:
    """Factory and store for spans; a no-op when ``enabled`` is false."""

    def __init__(self, enabled: bool = True, max_spans: int = 100_000):
        self.enabled = enabled
        self.max_spans = max_spans
        self.roots: List[Span] = []
        self.dropped = 0
        self._stack: List[Span] = []
        self._count = 0

    def span(self, name: str, **attributes: Any):
        """A context manager timing one section (no-op when disabled)."""
        if not self.enabled:
            return NULL_SPAN
        return Span(self, name, attributes)

    @property
    def current(self) -> Optional[Span]:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def all_spans(self) -> Iterator[Span]:
        """Every retained span, depth-first in start order."""
        stack = list(reversed(self.roots))
        while stack:
            span = stack.pop()
            yield span
            stack.extend(reversed(span.children))

    def find(self, name: str) -> List[Span]:
        """All retained spans with the given name."""
        return [span for span in self.all_spans() if span.name == name]

    def clear(self) -> None:
        self.roots.clear()
        self._stack.clear()
        self._count = 0
        self.dropped = 0

    def __len__(self) -> int:
        return self._count

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return f"<Tracer {state} spans={self._count} dropped={self.dropped}>"


def _format_duration(seconds: Optional[float]) -> str:
    if seconds is None:
        return "open"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds:.3f}s"


def format_span_tree(tracer: Tracer, max_attr_len: int = 60) -> str:
    """Render the tracer's span forest as an indented text tree."""
    lines: List[str] = []

    def visit(span: Span, depth: int) -> None:
        attrs = ""
        if span.attributes:
            joined = " ".join(f"{k}={v!r}" for k, v in span.attributes.items())
            if len(joined) > max_attr_len:
                joined = joined[: max_attr_len - 1] + "…"
            attrs = f"  [{joined}]"
        lines.append(
            f"{'  ' * depth}{span.name}  {_format_duration(span.duration)}{attrs}"
        )
        for child in span.children:
            visit(child, depth + 1)

    for root in tracer.roots:
        visit(root, 0)
    if tracer.dropped:
        lines.append(f"... {tracer.dropped} span(s) dropped (max_spans reached)")
    return "\n".join(lines)
