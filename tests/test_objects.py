"""Unit tests for the instance layer (repro.core.objects): objects,
complex objects, relationship objects, deletion cascades."""

import pytest

from repro.core import (
    INTEGER,
    ObjectType,
    RelationshipType,
    new_object,
    new_relationship,
)
from repro.errors import (
    ConstraintViolation,
    DomainError,
    ObjectDeletedError,
    SchemaError,
    UnknownAttributeError,
)
from tests.conftest import add_pins


class TestBasicObjects:
    def test_create_with_attributes(self, gates):
        gate = new_object(gates.elementary_gate, Length=10, Width=5, Function="AND")
        assert gate["Length"] == 10
        assert gate["Function"] == "AND"

    def test_surrogate_automatic_and_unique(self, gates):
        a = new_object(gates.pin_type)
        b = new_object(gates.pin_type)
        assert a["surrogate"] == a.surrogate
        assert a.surrogate != b.surrogate

    def test_equality_by_surrogate(self, gates):
        a = new_object(gates.pin_type)
        assert a == a and hash(a) == hash(a.surrogate)

    def test_domain_enforced_on_set(self, gates):
        gate = new_object(gates.elementary_gate)
        with pytest.raises(DomainError):
            gate.set_attribute("Length", "long")
        with pytest.raises(DomainError):
            gate.set_attribute("Function", "XOR")

    def test_unknown_attribute_rejected(self, gates):
        gate = new_object(gates.elementary_gate)
        with pytest.raises(UnknownAttributeError):
            gate.set_attribute("Colour", "red")
        with pytest.raises(UnknownAttributeError):
            gate.get_member("Colour")

    def test_unset_declared_attribute_reads_none(self, gates):
        gate = new_object(gates.elementary_gate)
        assert gate["Length"] is None

    def test_default_value_visible_until_overwritten(self):
        from repro.core import AttributeSpec

        t = ObjectType("T", attributes={"N": AttributeSpec("N", INTEGER, default=7)})
        obj = new_object(t)
        assert obj["N"] == 7
        obj.set("N", 9)
        assert obj["N"] == 9

    def test_dynamic_attributes_when_enabled(self):
        t = ObjectType("Scratch", allow_dynamic=True)
        obj = new_object(t)
        obj.set("anything", [1, 2])
        assert obj["anything"] == [1, 2]
        with pytest.raises(UnknownAttributeError):
            obj.get_member("unset_name")

    def test_update_many(self, gates):
        gate = new_object(gates.elementary_gate)
        gate.update(Length=3, Width=4)
        assert gate["Length"] == 3 and gate["Width"] == 4

    def test_get_with_default(self, gates):
        gate = new_object(gates.elementary_gate)
        assert gate.get("Nope", 42) == 42

    def test_setting_subclass_name_as_attribute_rejected(self, gates):
        gate = new_object(gates.elementary_gate)
        with pytest.raises(SchemaError):
            gate.set_attribute("Pins", [1])

    def test_visible_member_names(self, gates):
        impl = new_object(gates.gate_implementation)
        names = impl.visible_member_names()
        assert "surrogate" in names and "Length" in names and "SubGates" in names


class TestComplexObjects:
    def test_subobjects_created_in_subclass(self, gates):
        gate = new_object(gates.elementary_gate)
        pins = add_pins(gate)
        assert len(gate.subclass("Pins")) == 3
        assert all(pin.parent is gate for pin in pins)

    def test_get_member_returns_subclass_members(self, gates):
        gate = new_object(gates.elementary_gate)
        add_pins(gate)
        assert len(gate["Pins"]) == 3

    def test_subclass_membership(self, gates):
        gate = new_object(gates.elementary_gate)
        pin = gate.subclass("Pins").create(InOut="IN")
        assert pin in gate.subclass("Pins")

    def test_adopt_existing_object(self, gates):
        gate = new_object(gates.elementary_gate)
        pin = new_object(gates.pin_type, InOut="IN")
        gate.subclass("Pins").add(pin)
        assert pin.parent is gate

    def test_adopt_twice_rejected(self, gates):
        g1 = new_object(gates.elementary_gate)
        g2 = new_object(gates.elementary_gate)
        pin = new_object(gates.pin_type)
        g1.subclass("Pins").add(pin)
        with pytest.raises(SchemaError):
            g2.subclass("Pins").add(pin)

    def test_type_conformance_on_add(self, gates):
        gate = new_object(gates.elementary_gate)
        alien = new_object(gates.elementary_gate)
        with pytest.raises(SchemaError):
            gate.subclass("Pins").add(alien)

    def test_unknown_subclass(self, gates):
        gate = new_object(gates.elementary_gate)
        with pytest.raises(UnknownAttributeError):
            gate.subclass("Bolts")

    def test_constraints_from_paper_hold(self, gates):
        gate = new_object(gates.elementary_gate, Function="AND")
        add_pins(gate, n_in=2, n_out=1)
        gate.check_constraints()  # no exception

    def test_constraints_from_paper_violated(self, gates):
        gate = new_object(gates.elementary_gate, Function="AND")
        add_pins(gate, n_in=3, n_out=1)
        with pytest.raises(ConstraintViolation):
            gate.check_constraints()

    def test_nested_complex_objects(self, gates):
        big = new_object(gates.gate)
        sub = big.subclass("SubGates").create(Function="NAND")
        add_pins(sub)
        assert len(big["SubGates"]) == 1
        assert len(sub["Pins"]) == 3


class TestLocalRelationships:
    def test_wire_between_subgate_pins(self, gates):
        big = new_object(gates.gate)
        ext = big.subclass("Pins").create(InOut="OUT")
        sub = big.subclass("SubGates").create(Function="NAND")
        inner = sub.subclass("Pins").create(InOut="IN")
        wire = big.subrel("Wires").create({"Pin1": ext, "Pin2": inner})
        assert wire.participant("Pin1") is ext
        assert wire["Pin2"] is inner

    def test_where_clause_rejects_foreign_pins(self, gates):
        big = new_object(gates.gate)
        ext = big.subclass("Pins").create(InOut="OUT")
        stranger = new_object(gates.pin_type, InOut="IN")
        with pytest.raises(ConstraintViolation):
            big.subrel("Wires").create({"Pin1": ext, "Pin2": stranger})

    def test_relationship_attributes(self, gates):
        big = new_object(gates.gate)
        a = big.subclass("Pins").create(InOut="IN")
        b = big.subclass("Pins").create(InOut="OUT")
        wire = big.subrel("Wires").create(
            {"Pin1": a, "Pin2": b}, Corners=[(0, 0), (3, 4)]
        )
        assert len(wire["Corners"]) == 2

    def test_missing_participant_rejected(self, gates):
        big = new_object(gates.gate)
        a = big.subclass("Pins").create(InOut="IN")
        with pytest.raises(SchemaError):
            big.subrel("Wires").create({"Pin1": a})

    def test_unknown_role_rejected(self, gates):
        big = new_object(gates.gate)
        a = big.subclass("Pins").create(InOut="IN")
        b = big.subclass("Pins").create(InOut="OUT")
        with pytest.raises(SchemaError):
            big.subrel("Wires").create({"Pin1": a, "Pin2": b, "Pin3": a})

    def test_participant_type_checked(self, gates):
        big = new_object(gates.gate)
        sub = big.subclass("SubGates").create()
        pin = big.subclass("Pins").create(InOut="IN")
        with pytest.raises(SchemaError):
            big.subrel("Wires").create({"Pin1": pin, "Pin2": sub})

    def test_set_valued_participants(self, gates):
        screw_type = RelationshipType(
            "ScrewLike",
            relates={"Bores": (gates.pin_type, True)},
            attributes={"Strength": INTEGER},
        )
        a, b = new_object(gates.pin_type), new_object(gates.pin_type)
        rel = new_relationship(screw_type, {"Bores": [a, b]}, Strength=5)
        assert set(rel["Bores"]) == {a, b}
        assert rel["Strength"] == 5

    def test_single_valued_role_rejects_collection(self, gates):
        a = new_object(gates.pin_type)
        b = new_object(gates.pin_type)
        with pytest.raises(SchemaError):
            new_relationship(gates.wire_type, {"Pin1": [a], "Pin2": b})

    def test_non_object_participant_rejected(self, gates):
        b = new_object(gates.pin_type)
        with pytest.raises(SchemaError):
            new_relationship(gates.wire_type, {"Pin1": 42, "Pin2": b})


class TestDeletion:
    def test_delete_cascades_to_subobjects(self, gates):
        gate = new_object(gates.elementary_gate)
        pins = add_pins(gate)
        gate.delete()
        assert gate.deleted and all(pin.deleted for pin in pins)

    def test_delete_cascades_to_local_relationships(self, gates):
        big = new_object(gates.gate)
        a = big.subclass("Pins").create(InOut="IN")
        b = big.subclass("Pins").create(InOut="OUT")
        wire = big.subrel("Wires").create({"Pin1": a, "Pin2": b})
        big.delete()
        assert wire.deleted

    def test_deleting_participant_deletes_relationship(self, gates):
        big = new_object(gates.gate)
        a = big.subclass("Pins").create(InOut="IN")
        b = big.subclass("Pins").create(InOut="OUT")
        wire = big.subrel("Wires").create({"Pin1": a, "Pin2": b})
        big.subclass("Pins").remove(a)
        assert a.deleted and wire.deleted and not b.deleted

    def test_operations_on_deleted_object_fail(self, gates):
        gate = new_object(gates.elementary_gate)
        gate.delete()
        with pytest.raises(ObjectDeletedError):
            gate.get_member("Length")
        with pytest.raises(ObjectDeletedError):
            gate.set_attribute("Length", 5)
        with pytest.raises(ObjectDeletedError):
            gate.subclass("Pins")

    def test_double_delete_is_noop(self, gates):
        gate = new_object(gates.elementary_gate)
        gate.delete()
        gate.delete()
        assert gate.deleted

    def test_remove_foreign_member_rejected(self, gates):
        g1 = new_object(gates.elementary_gate)
        g2 = new_object(gates.elementary_gate)
        pin = g1.subclass("Pins").create(InOut="IN")
        with pytest.raises(SchemaError):
            g2.subclass("Pins").remove(pin)

    def test_relationship_delete_unregisters_participants(self, gates):
        a = new_object(gates.pin_type)
        b = new_object(gates.pin_type)
        rel = new_relationship(gates.wire_type, {"Pin1": a, "Pin2": b})
        rel.delete()
        assert rel.deleted
        a.delete()  # should not resurrect or fail on the dead relationship
        assert a.deleted
