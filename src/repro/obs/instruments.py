"""The per-database observability bundle and hot-path helpers.

:class:`Observability` bundles one tracer, one metrics registry, one
event tap, the audit log and the slow-operation log for a database.  Engine modules reach it through the database's
``obs`` attribute (``None`` by default — the whole layer costs one
attribute load and a branch when disabled)::

    obs = getattr(db, "obs", None)
    if obs is not None:
        obs.metrics.counter("reads.inherited").inc()

:func:`maybe_span` is the same pattern for spans: it returns the shared
no-op span when observability (or tracing) is off, so call sites can use
``with maybe_span(obs, "query.execute"):`` unconditionally.
"""

from __future__ import annotations

from typing import Any, Optional

from .metrics import MetricsRegistry
from .provenance import AuditLog
from .tap import EventTap
from .tracing import NULL_SPAN, Tracer

__all__ = ["Observability", "observability_of", "maybe_span"]


class Observability:
    """Tracer + metrics + event tap + audit + slow log + flight recorder
    for one database."""

    def __init__(
        self,
        database,
        tracing: bool = True,
        ring_size: int = 256,
        track_propagation: bool = True,
        audit: bool = True,
        audit_ring: int = 1024,
        audit_sink=None,
        slowlog: bool = True,
        slow_budgets=None,
        slowlog_ring: int = 256,
        flight_ring: int = 256,
    ):
        self.database = database
        self.tracer = Tracer(enabled=tracing)
        self.metrics = MetricsRegistry()
        self.audit = None
        if audit:
            if isinstance(audit_sink, str):
                from .export import JsonlSink

                audit_sink = JsonlSink(audit_sink)
            self.audit = AuditLog(
                database.events, ring_size=audit_ring, sink=audit_sink
            )
        # The slow-op log has no bus subscription of its own: engine call
        # sites clock an operation only when this attribute is non-None
        # and hand the duration over (see repro.obs.slowlog).
        self.slowlog = None
        if slowlog:
            from .slowlog import SlowLog

            self.slowlog = SlowLog(
                budgets=slow_budgets,
                ring_size=slowlog_ring,
                audit=self.audit,
                metrics=self.metrics,
            )
        # The audit log rides the tap's single wildcard subscription —
        # enabling provenance adds no further bus handlers.
        self.tap = EventTap(
            database.events,
            self.metrics,
            ring_size=ring_size,
            track_propagation=track_propagation,
            audit=self.audit,
            slowlog=self.slowlog,
        )
        # The flight recorder is pull-based: it subscribes to nothing and
        # costs nothing until someone calls tick() (or starts its thread).
        from .recorder import FlightRecorder

        self.recorder = FlightRecorder(database, capacity=flight_ring)
        self._health = None

    @property
    def health(self):
        """The lazily-built :class:`~repro.obs.health.HealthMonitor`."""
        if self._health is None:
            from .health import HealthMonitor

            self._health = HealthMonitor(self.recorder)
        return self._health

    # -- convenience passthroughs -------------------------------------------------

    def span(self, name: str, **attributes: Any):
        return self.tracer.span(name, **attributes)

    def count(self, name: str, n: int = 1) -> None:
        self.metrics.counter(name).inc(n)

    def observe(self, name: str, value: float, bounds=None) -> None:
        if bounds is not None:
            self.metrics.histogram(name, bounds).observe(value)
        else:
            self.metrics.histogram(name).observe(value)

    # -- lifecycle ---------------------------------------------------------------

    def detach(self) -> None:
        """Stop observing: drop the bus subscription, disable the tracer,
        stop the recorder thread, close the audit sink (the in-memory
        rings stay readable)."""
        self.tap.detach()
        self.tracer.enabled = False
        self.recorder.stop()
        if self.audit is not None:
            self.audit.close()

    def __repr__(self) -> str:
        return (
            f"<Observability db={self.database.name!r} "
            f"metrics={len(self.metrics)} spans={len(self.tracer)}>"
        )


def observability_of(owner) -> Optional[Observability]:
    """The :class:`Observability` of a database (or anything carrying one)."""
    return getattr(owner, "obs", None)


def maybe_span(obs: Optional[Observability], name: str, **attributes: Any):
    """A span when observability is attached and tracing on, else a no-op."""
    if obs is None:
        return NULL_SPAN
    return obs.tracer.span(name, **attributes)
