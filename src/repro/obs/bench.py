"""The unified benchmark harness behind ``repro bench``.

The repo's perf claims live in ``benchmarks/bench_e*.py`` /
``bench_fig*.py``; until this module they were driven only through
pytest-benchmark and their trajectory existed as prose in EXPERIMENTS.md.
This harness closes the loop from measurement to regression detection:

* **One timing discipline for every suite.**  Each benchmark module
  exposes ``register(suite)`` (see :class:`BenchSuite`); the
  :class:`Runner` applies the same warmup, timeit-style inner-loop
  calibration, repetition and GC pinning to every case, so all suites
  report identical statistics (min/median/mean/stdev over per-iteration
  seconds).  The headline metric is **min** — the least noise-contaminated
  estimator of the true cost of a deterministic operation.

* **Versioned in-repo snapshots.**  :func:`write_snapshot` emits
  ``BENCH_<seq>.json`` (``repro.bench/1`` schema) at the repo root with a
  machine/commit fingerprint, so the perf trajectory is tracked by git
  next to the code that moved it.

* **Noise-aware regression gating.**  :func:`compare_snapshots` reports
  per-case ratios against a prior snapshot with a relative threshold and
  an absolute noise floor; the CLI confirms suspected regressions by
  re-running just those cases (min-of-more) before failing, so transient
  scheduler noise does not page anyone.

Everything is stdlib; pytest-benchmark remains the interactive driver for
the same suites (both call the same module-level builders).
"""

from __future__ import annotations

import gc
import importlib
import json
import math
import os
import re
import statistics
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "BenchCase",
    "BenchSuite",
    "CaseResult",
    "Runner",
    "Comparison",
    "Delta",
    "discover_suites",
    "fingerprint",
    "make_snapshot",
    "validate_snapshot",
    "snapshot_paths",
    "next_snapshot_path",
    "load_snapshot",
    "write_snapshot",
    "latest_snapshot",
    "compare_snapshots",
]

BENCH_SCHEMA_VERSION = "repro.bench/1"

#: BENCH_0001.json, BENCH_0002.json, ... at the repository root.
_SNAPSHOT_RE = re.compile(r"^BENCH_(\d{4,})\.json$")


# ---------------------------------------------------------------------------
# cases and suites
# ---------------------------------------------------------------------------


@dataclass
class BenchCase:
    """One registered benchmark: a lazy ``make`` returning the timed thunk.

    ``make`` runs the case's setup (build the database, warm the caches)
    and returns the zero-argument callable the runner times — setup cost
    never pollutes the measurement, and skipped cases (quick mode) never
    pay their setup.  ``number`` pins the inner-loop count; ``None`` lets
    the runner calibrate it.
    """

    name: str
    group: str
    make: Callable[[], Callable[[], Any]]
    number: Optional[int] = None


class BenchSuite:
    """The registration surface handed to each module's ``register()``.

    ``suite.quick`` tells the adapter which scale regime is being run, so
    heavy parameterisations (50k-object libraries, fan-out 100) can drop
    to CI-friendly sizes without forking the benchmark logic::

        def register(suite):
            sizes = [2_000] if suite.quick else [10_000, 50_000]
            for n in sizes:
                @suite.case(f"eq_indexed[{n}]")
                def make(n=n):
                    db = parts_db(n)
                    return lambda: run_with(db, QUERY, True)
    """

    def __init__(self, group: str, quick: bool = False):
        self.group = group
        self.quick = quick
        self.cases: List[BenchCase] = []

    def case(
        self,
        name: str,
        make: Optional[Callable[[], Callable[[], Any]]] = None,
        *,
        number: Optional[int] = None,
    ):
        """Register a case; usable directly or as a decorator on ``make``."""
        if make is not None:
            self.cases.append(BenchCase(name, self.group, make, number))
            return make

        def decorate(fn: Callable[[], Callable[[], Any]]):
            self.cases.append(BenchCase(name, self.group, fn, number))
            return fn

        return decorate

    def __len__(self) -> int:
        return len(self.cases)

    def __repr__(self) -> str:
        mode = "quick" if self.quick else "full"
        return f"<BenchSuite {self.group} {mode} cases={len(self.cases)}>"


def discover_suites(
    bench_dir: str,
    quick: bool = False,
    only: Optional[Iterable[str]] = None,
) -> Tuple[List[BenchSuite], List[str]]:
    """Import every ``bench_*.py`` under ``bench_dir`` and collect suites.

    Modules are imported as ``benchmarks.<stem>`` (the directory's parent
    goes on ``sys.path``), so their own ``from benchmarks import obs_hook``
    imports keep working.  ``only`` filters module stems by substring
    (``e14`` matches ``bench_e14_resolution``).  Returns the registered
    suites plus the stems of modules that expose no ``register``.
    """
    directory = Path(bench_dir).resolve()
    if not directory.is_dir():
        raise FileNotFoundError(f"benchmark directory {bench_dir!r} not found")
    parent = str(directory.parent)
    if parent not in sys.path:
        sys.path.insert(0, parent)
    suites: List[BenchSuite] = []
    unadapted: List[str] = []
    for path in sorted(directory.glob("bench_*.py")):
        stem = path.stem
        if only and not any(token in stem for token in only):
            continue
        module = importlib.import_module(f"{directory.name}.{stem}")
        register = getattr(module, "register", None)
        if register is None:
            unadapted.append(stem)
            continue
        suite = BenchSuite(stem, quick=quick)
        register(suite)
        suites.append(suite)
    return suites, unadapted


# ---------------------------------------------------------------------------
# the runner
# ---------------------------------------------------------------------------


@dataclass
class CaseResult:
    """Statistics of one timed case (per-iteration seconds)."""

    name: str
    group: str
    number: int
    repeats: int
    warmup: int
    min: float
    median: float
    mean: float
    stdev: float
    times: List[float] = field(default_factory=list, repr=False)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "group": self.group,
            "number": self.number,
            "repeats": self.repeats,
            "warmup": self.warmup,
            "min": self.min,
            "median": self.median,
            "mean": self.mean,
            "stdev": self.stdev,
        }

    def merge_best(self, other: "CaseResult") -> "CaseResult":
        """Fold a confirmation re-run in, keeping the best (lowest) stats.

        Used by repeat-to-confirm: the true cost of a deterministic
        operation is bounded above by every observation, so the min over
        both runs is the better estimate and median/mean keep whichever
        run was less contaminated.
        """
        return CaseResult(
            name=self.name,
            group=self.group,
            number=self.number,
            repeats=self.repeats + other.repeats,
            warmup=self.warmup,
            min=min(self.min, other.min),
            median=min(self.median, other.median),
            mean=min(self.mean, other.mean),
            stdev=min(self.stdev, other.stdev),
            times=self.times + other.times,
        )


class Runner:
    """Warmup + calibration + repetition + GC pinning for every case.

    The discipline, per case: run ``make()`` (setup, untimed), call the
    thunk ``warmup`` times, calibrate an inner-loop ``number`` so one
    measurement spans at least ``min_time`` (timeit's doubling strategy —
    keeps the clock-read overhead amortised for nanosecond-scale thunks),
    then take ``repeats`` measurements of ``number`` iterations each with
    the GC frozen (collected once up front, disabled while timing).
    """

    def __init__(
        self,
        repeats: int = 5,
        warmup: int = 2,
        min_time: float = 0.02,
        quick: bool = False,
        max_number: int = 10_000_000,
    ):
        if quick:
            repeats = min(repeats, 3)
            min_time = min(min_time, 0.005)
        self.repeats = repeats
        self.warmup = warmup
        self.min_time = min_time
        self.quick = quick
        self.max_number = max_number

    def calibrate(self, fn: Callable[[], Any]) -> int:
        number = 1
        while number < self.max_number:
            start = time.perf_counter()
            for _ in range(number):
                fn()
            if time.perf_counter() - start >= self.min_time:
                break
            number *= 2
        return number

    def run_case(self, case: BenchCase) -> CaseResult:
        fn = case.make()
        for _ in range(self.warmup):
            fn()
        number = case.number or self.calibrate(fn)
        times: List[float] = []
        gc.collect()
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            perf_counter = time.perf_counter
            for _ in range(self.repeats):
                start = perf_counter()
                for _ in range(number):
                    fn()
                times.append((perf_counter() - start) / number)
        finally:
            if gc_was_enabled:
                gc.enable()
        return CaseResult(
            name=case.name,
            group=case.group,
            number=number,
            repeats=self.repeats,
            warmup=self.warmup,
            min=min(times),
            median=statistics.median(times),
            mean=statistics.fmean(times),
            stdev=statistics.stdev(times) if len(times) > 1 else 0.0,
            times=times,
        )

    def run(
        self,
        suites: Iterable[BenchSuite],
        progress: Optional[Callable[[str], None]] = None,
    ) -> List[CaseResult]:
        results: List[CaseResult] = []
        for suite in suites:
            for case in suite.cases:
                result = self.run_case(case)
                results.append(result)
                if progress is not None:
                    progress(
                        f"{result.group}::{result.name}  "
                        f"min={_format_time(result.min)}  "
                        f"median={_format_time(result.median)}  "
                        f"(n={result.number} x{result.repeats})"
                    )
        return results


def _format_time(seconds: float) -> str:
    if seconds < 1e-6:
        return f"{seconds * 1e9:.0f}ns"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds:.3f}s"


# ---------------------------------------------------------------------------
# fingerprint and snapshots
# ---------------------------------------------------------------------------


def _git(*args: str) -> Optional[str]:
    try:
        out = subprocess.run(
            ["git", *args],
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):  # pragma: no cover
        return None
    if out.returncode != 0:
        return None
    return out.stdout.strip()


def fingerprint() -> Dict[str, Any]:
    """Machine + interpreter + commit identity of one benchmark run.

    Comparisons across different fingerprints are still allowed (the CLI
    only warns): the trajectory spans machines, and the threshold +
    confirmation discipline is what filters environment noise.
    """
    import platform

    commit = _git("rev-parse", "HEAD")
    dirty = None
    if commit is not None:
        status = _git("status", "--porcelain")
        dirty = bool(status) if status is not None else None
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "commit": commit,
        "dirty": dirty,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
    }


def make_snapshot(
    results: Iterable[CaseResult],
    seq: int,
    mode: str = "full",
    runner: Optional[Runner] = None,
) -> Dict[str, Any]:
    """The ``repro.bench/1`` document for one run."""
    config: Dict[str, Any] = {"mode": mode}
    if runner is not None:
        config.update(
            repeats=runner.repeats, warmup=runner.warmup, min_time=runner.min_time
        )
    return {
        "schema": BENCH_SCHEMA_VERSION,
        "seq": seq,
        "fingerprint": fingerprint(),
        "config": config,
        "results": [result.as_dict() for result in sorted(
            results, key=lambda r: (r.group, r.name)
        )],
    }


def validate_snapshot(snap: Any) -> List[str]:
    """Schema errors of a would-be ``repro.bench/1`` document ([] = valid)."""
    errors: List[str] = []
    if not isinstance(snap, dict):
        return [f"snapshot must be an object, got {type(snap).__name__}"]
    if snap.get("schema") != BENCH_SCHEMA_VERSION:
        errors.append(
            f"schema must be {BENCH_SCHEMA_VERSION!r}, got {snap.get('schema')!r}"
        )
    if not isinstance(snap.get("seq"), int) or isinstance(snap.get("seq"), bool):
        errors.append("seq must be an integer")
    if not isinstance(snap.get("fingerprint"), dict):
        errors.append("fingerprint must be an object")
    results = snap.get("results")
    if not isinstance(results, list):
        errors.append("results must be a list")
        return errors
    for index, entry in enumerate(results):
        if not isinstance(entry, dict):
            errors.append(f"results[{index}] must be an object")
            continue
        for key in ("name", "group"):
            if not isinstance(entry.get(key), str):
                errors.append(f"results[{index}].{key} must be a string")
        for key in ("min", "median", "mean", "stdev"):
            value = entry.get(key)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                errors.append(f"results[{index}].{key} must be a number")
            elif not math.isfinite(value) or value < 0:
                errors.append(f"results[{index}].{key} must be finite and >= 0")
    return errors


def snapshot_paths(root: str) -> List[Path]:
    """All ``BENCH_*.json`` under ``root``, in sequence order."""
    found = []
    for path in Path(root).iterdir():
        match = _SNAPSHOT_RE.match(path.name)
        if match:
            found.append((int(match.group(1)), path))
    return [path for _, path in sorted(found)]


def next_snapshot_path(root: str) -> Tuple[int, Path]:
    """The next free (seq, path) in the trajectory under ``root``."""
    existing = snapshot_paths(root)
    if existing:
        last = int(_SNAPSHOT_RE.match(existing[-1].name).group(1))
    else:
        last = 0
    seq = last + 1
    return seq, Path(root) / f"BENCH_{seq:04d}.json"


def latest_snapshot(root: str) -> Optional[Path]:
    paths = snapshot_paths(root)
    return paths[-1] if paths else None


def load_snapshot(path: str) -> Dict[str, Any]:
    """Load and validate one snapshot; raises ``ValueError`` on bad schema."""
    with open(path) as f:
        snap = json.load(f)
    errors = validate_snapshot(snap)
    if errors:
        raise ValueError(
            f"{path}: not a valid {BENCH_SCHEMA_VERSION} snapshot: "
            + "; ".join(errors)
        )
    return snap


def write_snapshot(path: str, snap: Dict[str, Any]) -> None:
    errors = validate_snapshot(snap)
    if errors:
        raise ValueError(f"refusing to write invalid snapshot: {'; '.join(errors)}")
    with open(path, "w") as f:
        json.dump(snap, f, indent=1, sort_keys=True)
        f.write("\n")


# ---------------------------------------------------------------------------
# comparison / regression gating
# ---------------------------------------------------------------------------


@dataclass
class Delta:
    """One case's before/after (on the ``min`` statistic)."""

    name: str
    group: str
    before: float
    after: float

    @property
    def ratio(self) -> float:
        return self.after / self.before if self.before else math.inf

    @property
    def key(self) -> str:
        return f"{self.group}::{self.name}"


@dataclass
class Comparison:
    """The outcome of comparing a run against a prior snapshot.

    A case is a *regression* when its min grew by more than ``threshold``
    (relative) **and** by more than ``noise_floor`` seconds (absolute) —
    the floor keeps nanosecond-scale cases from tripping the gate on
    clock granularity.  ``ok`` is False only when regressions remain.
    """

    threshold: float
    noise_floor: float
    regressions: List[Delta] = field(default_factory=list)
    improvements: List[Delta] = field(default_factory=list)
    unchanged: List[Delta] = field(default_factory=list)
    added: List[str] = field(default_factory=list)
    removed: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.regressions

    def render(self) -> str:
        lines = [
            f"compared {len(self.regressions) + len(self.improvements) + len(self.unchanged)} "
            f"case(s), threshold {self.threshold:.0%}"
        ]
        for delta in self.regressions:
            lines.append(
                f"  REGRESSION {delta.key}: {_format_time(delta.before)} -> "
                f"{_format_time(delta.after)} ({delta.ratio:.2f}x)"
            )
        for delta in self.improvements:
            lines.append(
                f"  improved   {delta.key}: {_format_time(delta.before)} -> "
                f"{_format_time(delta.after)} ({delta.ratio:.2f}x)"
            )
        if self.added:
            lines.append(f"  new case(s): {', '.join(sorted(self.added))}")
        if self.removed:
            lines.append(f"  missing case(s): {', '.join(sorted(self.removed))}")
        lines.append("regression gate: " + ("PASS" if self.ok else "FAIL"))
        return "\n".join(lines)


def _result_index(snap: Dict[str, Any]) -> Dict[str, Dict[str, Any]]:
    return {
        f"{entry['group']}::{entry['name']}": entry for entry in snap["results"]
    }


def compare_snapshots(
    prior: Dict[str, Any],
    current: Dict[str, Any],
    threshold: float = 0.25,
    noise_floor: float = 5e-8,
) -> Comparison:
    """Per-case comparison of two ``repro.bench/1`` snapshots."""
    before_index = _result_index(prior)
    after_index = _result_index(current)
    comparison = Comparison(threshold=threshold, noise_floor=noise_floor)
    for key, after in after_index.items():
        before = before_index.get(key)
        if before is None:
            comparison.added.append(key)
            continue
        delta = Delta(
            name=after["name"],
            group=after["group"],
            before=before["min"],
            after=after["min"],
        )
        grew = delta.after - delta.before
        if grew > noise_floor and delta.before and delta.ratio > 1 + threshold:
            comparison.regressions.append(delta)
        elif -grew > noise_floor and delta.ratio < 1 / (1 + threshold):
            comparison.improvements.append(delta)
        else:
            comparison.unchanged.append(delta)
    for key in before_index:
        if key not in after_index:
            comparison.removed.append(key)
    comparison.regressions.sort(key=lambda d: d.ratio, reverse=True)
    comparison.improvements.sort(key=lambda d: d.ratio)
    return comparison


def confirm_regressions(
    comparison: Comparison,
    suites: Iterable[BenchSuite],
    runner: Runner,
    results: List[CaseResult],
    rounds: int = 2,
    progress: Optional[Callable[[str], None]] = None,
) -> List[CaseResult]:
    """Repeat-to-confirm: re-run only the suspected regressions.

    Each suspect is re-measured up to ``rounds`` more times; its result is
    replaced by the best-of-all-runs merge (see
    :meth:`CaseResult.merge_best`).  A case that stops regressing after
    any round is cleared immediately.  Returns the updated result list;
    the caller re-compares to get the confirmed verdict.
    """
    if comparison.ok:
        return results
    suspects = {delta.key for delta in comparison.regressions}
    by_key = {f"{r.group}::{r.name}": r for r in results}
    cases = {
        f"{suite.group}::{case.name}": case
        for suite in suites
        for case in suite.cases
    }
    for key in sorted(suspects):
        case = cases.get(key)
        if case is None:  # pragma: no cover - result without a live case
            continue
        suspect_delta = next(d for d in comparison.regressions if d.key == key)
        for round_index in range(rounds):
            rerun = runner.run_case(case)
            merged = by_key[key].merge_best(rerun)
            by_key[key] = merged
            if progress is not None:
                progress(
                    f"confirm[{round_index + 1}/{rounds}] {key}: "
                    f"min={_format_time(merged.min)} "
                    f"(was {_format_time(suspect_delta.before)})"
                )
            if merged.min <= suspect_delta.before * (1 + comparison.threshold):
                break
    return [by_key[f"{r.group}::{r.name}"] for r in results]
