"""Consistency control: adaptation flags on inheritance links, triggers."""

from .adaptation import AdaptationRecord, AdaptationTracker
from .impact import ImpactReport, affected_types, change_impact, extension_impact
from .triggers import Trigger, TriggerRegistry, auto_adapt_trigger

__all__ = [
    "AdaptationRecord",
    "AdaptationTracker",
    "ImpactReport",
    "affected_types",
    "change_impact",
    "extension_impact",
    "Trigger",
    "TriggerRegistry",
    "auto_adapt_trigger",
]
