"""Generic relationships and version selection (§6).

*"If we use a static assignment of components to the composite object in
the inheritance relationship, it is not possible to incorporate new
versions of components automatically …  Therefore, often a generic
relationship is used (i.e. the component version is not fixed by the
relationship).  Using generic relationships the selection of component
versions is deferred to assembly-time."*

The three selection policies the paper lists:

1. :class:`QuerySelection` — *top-down*: the composite states the required
   properties of the component as a query;
2. :class:`DefaultSelection` — *bottom-up*: the design object supplies a
   default version;
3. :class:`EnvironmentSelection` — selection guided by information outside
   both objects (an :class:`~repro.versions.environments.Environment`).

A :class:`GenericRelationship` holds the unresolved slot; ``resolve(policy)``
selects a candidate from the design object's version graph and binds the
slot through the ordinary inheritance relationship — after resolution the
composite behaves exactly like a statically assigned one.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Union

from ..core.inheritance import InheritanceRelationshipType
from ..core.objects import DBObject, InheritanceLink, bind
from ..engine.query import evaluate_predicate
from ..errors import SelectionError
from .environments import Environment, EnvironmentRegistry
from .graph import VersionGraph
from .states import VersionState

__all__ = [
    "SelectionPolicy",
    "QuerySelection",
    "DefaultSelection",
    "EnvironmentSelection",
    "GenericRelationship",
]


class SelectionPolicy:
    """Strategy interface: choose one version among the candidates."""

    def choose(
        self, slot: "GenericRelationship", candidates: List[DBObject]
    ) -> DBObject:
        raise NotImplementedError


class QuerySelection(SelectionPolicy):
    """Top-down selection (§6 policy 1).

    ``where`` is a constraint-language expression or Python predicate over
    candidate versions ("the required properties of the component").
    ``on_ties`` resolves multiple matches: ``"error"`` (default),
    ``"first"``, or ``"newest"`` (highest surrogate, i.e. latest created).
    """

    def __init__(self, where: Union[str, Callable], on_ties: str = "error"):
        if on_ties not in ("error", "first", "newest"):
            raise SelectionError(f"unknown tie-break {on_ties!r}")
        self.predicate = evaluate_predicate(where)
        self.where = where if isinstance(where, str) else getattr(where, "__name__", "<predicate>")
        self.on_ties = on_ties

    def choose(self, slot, candidates):
        matches = [c for c in candidates if self.predicate(c)]
        if not matches:
            raise SelectionError(
                f"no version satisfies {self.where!r} for {slot!r}"
            )
        if len(matches) == 1 or self.on_ties == "first":
            return matches[0]
        if self.on_ties == "newest":
            return max(matches, key=lambda c: c.surrogate)
        raise SelectionError(
            f"{len(matches)} versions satisfy {self.where!r} for {slot!r}; "
            f"refine the query or choose a tie-break"
        )


class DefaultSelection(SelectionPolicy):
    """Bottom-up selection (§6 policy 2): the graph's default version.

    With ``released_only=True`` the default must be in the RELEASED state
    (or FROZEN) to be eligible — an unreleased default is an error, not a
    silent fallback.
    """

    def __init__(self, released_only: bool = False):
        self.released_only = released_only

    def choose(self, slot, candidates):
        graph = slot.graph
        default = graph.default_version
        if default is None:
            raise SelectionError(f"version graph {graph.name!r} has no default")
        if default not in candidates:
            raise SelectionError(
                f"default version {default!r} is not an eligible candidate"
            )
        if self.released_only:
            state = graph.state_of(default)
            if state not in (VersionState.RELEASED, VersionState.FROZEN):
                raise SelectionError(
                    f"default version {default!r} is in state {state!r}, "
                    f"not released"
                )
        return default


class EnvironmentSelection(SelectionPolicy):
    """Environment-guided selection (§6 policy 3, after [DiLo85])."""

    def __init__(self, environment: Union[Environment, EnvironmentRegistry]):
        self.environment = environment

    def _resolve_environment(self) -> Environment:
        if isinstance(self.environment, EnvironmentRegistry):
            current = self.environment.current
            if current is None:
                raise SelectionError("no environment is active")
            return current
        return self.environment

    def choose(self, slot, candidates):
        environment = self._resolve_environment()
        design_object = slot.graph.design_object
        if design_object is None:
            raise SelectionError(
                f"graph {slot.graph.name!r} has no design object to look up"
            )
        version = environment.version_for(design_object)
        if version is None:
            raise SelectionError(
                f"environment {environment.name!r} assigns no version to "
                f"{design_object!r}"
            )
        if version not in candidates:
            raise SelectionError(
                f"environment {environment.name!r} assigns {version!r}, "
                f"which is not an eligible candidate"
            )
        return version


class GenericRelationship:
    """An unresolved component slot: inheritor + relationship + version graph.

    ``resolve(policy)`` performs assembly-time selection and establishes
    the ordinary inheritance link; ``re_resolve`` unbinds and selects again
    (e.g. after a new version was released or the environment changed).
    """

    def __init__(
        self,
        inheritor: DBObject,
        rel_type: InheritanceRelationshipType,
        graph: VersionGraph,
    ):
        self.inheritor = inheritor
        self.rel_type = rel_type
        self.graph = graph

    def candidates(self) -> List[DBObject]:
        """Versions eligible as transmitters for this slot's relationship."""
        return [
            version
            for version in self.graph.members()
            if version.object_type.conforms_to(self.rel_type.transmitter_type)
            and not version.deleted
        ]

    @property
    def resolved(self) -> bool:
        return self.inheritor.link_for(self.rel_type) is not None

    @property
    def current_version(self) -> Optional[DBObject]:
        return self.inheritor.transmitter_of(self.rel_type)

    def resolve(self, policy: SelectionPolicy) -> InheritanceLink:
        """Select and bind; fails when already resolved."""
        if self.resolved:
            raise SelectionError(
                f"{self.inheritor!r} is already bound via {self.rel_type.name!r}"
            )
        chosen = policy.choose(self, self.candidates())
        return bind(self.inheritor, chosen, self.rel_type)

    def re_resolve(self, policy: SelectionPolicy) -> InheritanceLink:
        """Unbind (if bound) and select afresh."""
        link = self.inheritor.link_for(self.rel_type)
        if link is not None:
            link.unbind()
        return self.resolve(policy)

    def unresolve(self) -> None:
        link = self.inheritor.link_for(self.rel_type)
        if link is not None:
            link.unbind()

    def __repr__(self) -> str:
        state = "resolved" if self.resolved else "unresolved"
        return (
            f"<GenericRelationship {self.inheritor!r} via "
            f"{self.rel_type.name} [{state}]>"
        )
