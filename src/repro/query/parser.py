"""Parser for the query language.

§6 motivates queries twice: top-down component selection ("a component is
selected by queries associated with the composite object giving the
required properties of the component") and version classification.  The
query language is a small select over classes/types, reusing the
constraint-expression language for every value position::

    select * from Interfaces where Length > 10
    select Length, Width from GateInterface where count(Pins) = 3
    select Length * Width from Interfaces order by Length desc limit 5
    select distinct Function from Implementations

Grammar::

    query      := 'select' ['distinct'] projection 'from' IDENT
                  ['where' expr] ['order' 'by' expr ['asc'|'desc']]
                  ['limit' NUMBER]
    projection := '*' | expr (',' expr)*

``from`` names a class (extent) first, falling back to a type name (all
live objects of the type, subtypes included).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import lru_cache
from typing import List, Optional, Tuple

from ..core import resolution as _resolution
from ..errors import QueryError
from ..expr.ast import Node
from ..expr.lexer import Token, tokenize
from ..expr.parser import parse_expression

__all__ = ["QuerySpec", "parse_query"]


@dataclass
class QuerySpec:
    """A parsed query, ready for execution."""

    source_name: str
    projection: Optional[List[Tuple[str, Node]]]  # None == '*'
    distinct: bool = False
    where: Optional[Node] = None
    where_source: str = ""
    order_by: Optional[Node] = None
    order_source: str = ""
    descending: bool = False
    limit: Optional[int] = None
    text: str = ""

    @property
    def column_names(self) -> List[str]:
        if self.projection is None:
            return ["*"]
        return [source for source, _ in self.projection]


def _is_word(token: Token, word: str) -> bool:
    if token.kind == "IDENT":
        return token.text.lower() == word
    if token.kind == "KEYWORD":
        return token.text == word
    return False


class _QueryParser:
    """Splits the token stream into clauses, delegating expressions to
    :mod:`repro.expr.parser` over source slices."""

    CLAUSE_WORDS = ("from", "where", "order", "limit")

    def __init__(self, source: str):
        self.source = source
        self.tokens = tokenize(source)

    def parse(self) -> QuerySpec:
        tokens = self.tokens
        if not tokens or not _is_word(tokens[0], "select"):
            raise QueryError(f"queries start with 'select': {self.source!r}")
        index = 1
        distinct = False
        if index < len(tokens) and _is_word(tokens[index], "distinct"):
            distinct = True
            index += 1

        clause_starts = self._clause_positions(index)
        if "from" not in clause_starts:
            raise QueryError(f"missing 'from' clause in {self.source!r}")

        projection = self._parse_projection(index, clause_starts["from"])
        source_name = self._parse_source(clause_starts["from"])
        where, where_source = self._parse_where(clause_starts)
        order_by, order_source, descending = self._parse_order(clause_starts)
        limit = self._parse_limit(clause_starts)

        return QuerySpec(
            source_name=source_name,
            projection=projection,
            distinct=distinct,
            where=where,
            where_source=where_source,
            order_by=order_by,
            order_source=order_source,
            descending=descending,
            limit=limit,
            text=self.source,
        )

    # -- clause plumbing -----------------------------------------------------------

    def _clause_positions(self, start: int) -> dict:
        positions = {}
        depth = 0
        for i in range(start, len(self.tokens)):
            token = self.tokens[i]
            if token.is_op("("):
                depth += 1
            elif token.is_op(")"):
                depth -= 1
            elif depth == 0:
                for word in self.CLAUSE_WORDS:
                    if word not in positions and _is_word(token, word):
                        positions[word] = i
        return positions

    def _slice(self, first_token: int, end_token: int) -> str:
        if first_token >= len(self.tokens) or self.tokens[first_token].kind == "EOF":
            return ""
        start_pos = self.tokens[first_token].position
        if end_token >= len(self.tokens) or self.tokens[end_token].kind == "EOF":
            return self.source[start_pos:].strip()
        return self.source[start_pos : self.tokens[end_token].position].strip()

    def _next_clause_index(self, after_word: str, clause_starts: dict) -> int:
        order = ["from", "where", "order", "limit"]
        current = order.index(after_word)
        candidates = [
            clause_starts[word]
            for word in order[current + 1:]
            if word in clause_starts
        ]
        return min(candidates) if candidates else len(self.tokens) - 1

    # -- clause parsing ---------------------------------------------------------------

    def _parse_projection(self, start: int, from_index: int):
        text = self._slice(start, from_index)
        if not text:
            raise QueryError(f"empty projection in {self.source!r}")
        if text == "*":
            return None
        items: List[Tuple[str, Node]] = []
        for chunk in self._split_top_level_commas(text):
            chunk = chunk.strip()
            if not chunk:
                raise QueryError(f"empty projection item in {self.source!r}")
            items.append((chunk, parse_expression(chunk)))
        return items

    @staticmethod
    def _split_top_level_commas(text: str) -> List[str]:
        parts: List[str] = []
        depth = 0
        current: List[str] = []
        for ch in text:
            if ch == "(":
                depth += 1
            elif ch == ")":
                depth -= 1
            if ch == "," and depth == 0:
                parts.append("".join(current))
                current = []
            else:
                current.append(ch)
        parts.append("".join(current))
        return parts

    def _parse_source(self, from_index: int) -> str:
        token = self.tokens[from_index + 1]
        if token.kind != "IDENT":
            raise QueryError(f"expected a class or type name after 'from'")
        return token.text

    def _parse_where(self, clause_starts: dict):
        if "where" not in clause_starts:
            return None, ""
        end = self._next_clause_index("where", clause_starts)
        text = self._slice(clause_starts["where"] + 1, end)
        if not text:
            raise QueryError(f"empty where clause in {self.source!r}")
        return parse_expression(text), text

    def _parse_order(self, clause_starts: dict):
        if "order" not in clause_starts:
            return None, "", False
        by_index = clause_starts["order"] + 1
        if not _is_word(self.tokens[by_index], "by"):
            raise QueryError("expected 'by' after 'order'")
        end = self._next_clause_index("order", clause_starts)
        text = self._slice(by_index + 1, end)
        descending = False
        lowered = text.lower()
        for suffix, desc in (("desc", True), ("asc", False)):
            if lowered.endswith(suffix):
                stripped = text[: -len(suffix)].rstrip()
                if stripped:
                    text = stripped
                    descending = desc
                break
        if not text:
            raise QueryError(f"empty order-by clause in {self.source!r}")
        return parse_expression(text), text, descending

    def _parse_limit(self, clause_starts: dict) -> Optional[int]:
        if "limit" not in clause_starts:
            return None
        token = self.tokens[clause_starts["limit"] + 1]
        if token.kind != "NUMBER" or "." in token.text:
            raise QueryError("limit expects an integer")
        value = int(token.text)
        if value < 0:
            raise QueryError("limit must be non-negative")
        return value


@lru_cache(maxsize=256)
def _parse_cached(source: str, schema_epoch: int) -> QuerySpec:
    # schema_epoch is not read — it is part of the cache key, so a DDL
    # change yields fresh AST nodes for the same text (see parse_query).
    return _QueryParser(source).parse()


def parse_query(source: str) -> QuerySpec:
    """Parse query text into a :class:`QuerySpec`.

    Parses are memoised by ``(text, schema epoch)``: re-running a query
    within one epoch shares one AST — node identity is what keys the
    compiled-program and view-scan caches, making repeat executions hit
    their compiled programs instead of recompiling — while any DDL change
    (type definition, ``declare_inheritor_in``) keys a fresh parse, so no
    downstream cache can serve a program compiled against the old schema
    for textually identical query text.  Each call returns a fresh
    (shallow) spec copy; the shared pieces are the immutable clause ASTs.
    """
    return replace(_parse_cached(source.strip(), _resolution.schema_epoch()))
