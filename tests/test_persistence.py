"""Tests for save/load round-trips (repro.engine.persistence)."""

import json

import pytest

from repro.engine import Database, dump_image, load, load_image, save
from repro.errors import PersistenceError
from tests.conftest import add_pins, build_gate_database


def populated_db():
    db = build_gate_database("persist")
    iface = db.create_object("GateInterface", class_name="Interfaces", Length=40, Width=20)
    add_pins(iface)
    impl = db.create_object(
        "GateImplementation",
        class_name="Implementations",
        transmitter=iface,
        Function=[[True, False]],
    )
    sub = impl.subclass("SubGates").create(Function="AND", GatePosition=(1, 2))
    add_pins(sub)
    pins = iface.subclass("Pins").members()
    impl.subrel("Wires").create(
        {"Pin1": pins[0], "Pin2": sub.subclass("Pins").members()[0]},
        Corners=[(0, 0), (5, 5)],
    )
    return db, iface, impl, sub


class TestRoundTrip:
    def test_full_round_trip(self, tmp_path):
        db, iface, impl, sub = populated_db()
        path = str(tmp_path / "image.json")
        save(db, path)

        fresh = build_gate_database("persist")
        load(path, fresh)
        assert fresh.count() == db.count()

        iface2 = fresh.get(iface.surrogate)
        impl2 = fresh.get(impl.surrogate)
        assert iface2["Length"] == 40
        assert len(iface2["Pins"]) == 3
        # Value inheritance survives the round trip.
        assert impl2["Length"] == 40
        assert {p.surrogate for p in impl2["Pins"]} == {
            p.surrogate for p in iface2["Pins"]
        }
        # Structured attribute values are restored to normalised form.
        assert impl2["Function"] == ((True, False),)
        sub2 = fresh.get(sub.surrogate)
        assert sub2["GatePosition"].X == 1
        # Local relationships restored with participants.
        wires = impl2.subrel("Wires").members()
        assert len(wires) == 1 and len(wires[0]["Corners"]) == 2

    def test_classes_restored(self, tmp_path):
        db, iface, impl, _ = populated_db()
        path = str(tmp_path / "image.json")
        save(db, path)
        fresh = build_gate_database("persist")
        load(path, fresh)
        assert fresh.get(iface.surrogate) in fresh.class_("Interfaces")
        assert fresh.get(impl.surrogate) in fresh.class_("Implementations")

    def test_surrogates_not_reused_after_load(self, tmp_path):
        db, *_ = populated_db()
        path = str(tmp_path / "image.json")
        save(db, path)
        fresh = build_gate_database("persist")
        load(path, fresh)
        newcomer = fresh.create_object("GateInterface")
        assert newcomer.surrogate.value > db.surrogates.last_issued

    def test_inherited_readonly_after_load(self, tmp_path):
        from repro.errors import InheritanceError

        db, iface, impl, _ = populated_db()
        path = str(tmp_path / "image.json")
        save(db, path)
        fresh = build_gate_database("persist")
        load(path, fresh)
        with pytest.raises(InheritanceError):
            fresh.get(impl.surrogate).set_attribute("Length", 1)

    def test_update_propagates_after_load(self, tmp_path):
        db, iface, impl, _ = populated_db()
        path = str(tmp_path / "image.json")
        save(db, path)
        fresh = build_gate_database("persist")
        load(path, fresh)
        fresh.get(iface.surrogate).set_attribute("Length", 77)
        assert fresh.get(impl.surrogate)["Length"] == 77

    def test_object_contained_in_relationship_round_trips(self):
        """A plain object's container owner can be a *relationship* (a
        steel Screwing carries Bolt/Nut in local subclasses); the loader
        must defer such containers until relationships materialise."""
        from repro.workloads.steel import generate_structure, steel_database

        db = steel_database("steel-rt")
        structure, screwings = generate_structure(db)
        image = dump_image(db)

        fresh = steel_database("steel-rt")
        load_image(image, fresh)
        assert fresh.count() == db.count()
        structure2 = fresh.get(structure.surrogate)
        screwings2 = structure2.subrel("Screwings").members()
        assert len(screwings2) == len(screwings)
        for screwing in screwings2:
            bolt = screwing.subclass("Bolt").members()[0]
            nut = screwing.subclass("Nut").members()[0]
            # The restored slots still inherit the §5-consistent values.
            assert bolt["Diameter"] == nut["Diameter"]
            assert bolt.parent is screwing


class TestImageValidation:
    def test_load_into_nonempty_database_rejected(self, tmp_path):
        db, *_ = populated_db()
        image = dump_image(db)
        with pytest.raises(PersistenceError):
            load_image(image, db)

    def test_unsupported_format_rejected(self):
        fresh = build_gate_database()
        with pytest.raises(PersistenceError):
            load_image({"format": 999, "objects": []}, fresh)

    def test_missing_type_in_catalog(self, tmp_path):
        db, *_ = populated_db()
        path = str(tmp_path / "image.json")
        save(db, path)
        bare = Database("persist")  # empty catalog
        with pytest.raises(PersistenceError):
            load(path, bare)

    def test_unreadable_path(self):
        fresh = build_gate_database()
        with pytest.raises(PersistenceError):
            load("/nonexistent/image.json", fresh)

    def test_corrupt_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        fresh = build_gate_database()
        with pytest.raises(PersistenceError):
            load(str(path), fresh)

    def test_image_is_plain_json(self, tmp_path):
        db, *_ = populated_db()
        path = str(tmp_path / "image.json")
        save(db, path)
        with open(path) as f:
            image = json.load(f)
        assert image["format"] == 1
        assert isinstance(image["objects"], list)
