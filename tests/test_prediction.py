"""Tests for conflict prediction (repro.txn.prediction)."""

import pytest

from repro.composition import add_component
from repro.txn import potential_conflicts, relation_between
from repro.workloads import gate_database, make_implementation, make_interface


@pytest.fixture
def db():
    return gate_database("prediction")


class TestRelationBetween:
    def test_identity(self, db):
        iface = make_interface(db)
        assert relation_between(iface, iface)[0] == "same-object"

    def test_value_inheritance_direct(self, db):
        iface = make_interface(db)
        impl = make_implementation(db, iface)
        kind, detail = relation_between(iface, impl)
        assert kind == "value-inheritance"
        kind_rev, _ = relation_between(impl, iface)
        assert kind_rev == "value-inheritance"

    def test_value_inheritance_transitive(self, db):
        top = db.create_object("GateInterface_I")
        iface = db.create_object("GateInterface", transmitter=top, Length=1, Width=1)
        impl = db.create_object("GateImplementation", transmitter=iface)
        assert relation_between(top, impl)[0] == "value-inheritance"

    def test_shared_relationship(self, db):
        iface = make_interface(db)
        a, b, _ = iface.subclass("Pins").members()
        db.create_relationship("WireType", {"Pin1": a, "Pin2": b})
        kind, detail = relation_between(a, b)
        # Both live in the same complex object too, but the explicit
        # relationship check runs only after inheritance — same-complex
        # membership is checked last, so the relationship wins.
        assert kind == "relationship"
        assert "WireType" in detail

    def test_same_complex_object(self, db):
        iface = make_interface(db)
        pins = iface.subclass("Pins").members()
        kind, _ = relation_between(pins[0], pins[1])
        assert kind == "same-complex-object"

    def test_unrelated(self, db):
        a = make_interface(db)
        b = make_interface(db)
        assert relation_between(a, b) is None

    def test_component_slot_vs_component(self, db):
        composite = make_implementation(db, make_interface(db))
        component = make_interface(db)
        slot = add_component(composite, "SubGates", component,
                             GateLocation=(0, 0))
        assert relation_between(component, slot)[0] == "value-inheritance"


class TestPotentialConflicts:
    def test_the_paper_scenario(self, db):
        # Two update transactions working on related objects: one designer
        # edits the composite, the other edits the component interface.
        composite = make_implementation(db, make_interface(db))
        component = make_interface(db)
        slot = add_component(composite, "SubGates", component,
                             GateLocation=(0, 0))
        warnings = potential_conflicts([slot], [component])
        assert len(warnings) == 1
        assert warnings[0].kind == "value-inheritance"

    def test_disjoint_work_is_silent(self, db):
        a = [make_interface(db), make_interface(db)]
        b = [make_interface(db)]
        assert potential_conflicts(a, b) == []

    def test_multiple_pairs_reported_once(self, db):
        iface = make_interface(db)
        impls = [make_implementation(db, iface) for _ in range(2)]
        warnings = potential_conflicts([iface, iface], impls)
        assert len(warnings) == 2  # one per implementation, no duplicates

    def test_str_rendering(self, db):
        iface = make_interface(db)
        impl = make_implementation(db, iface)
        warning = potential_conflicts([iface], [impl])[0]
        assert "value-inheritance" in str(warning)
