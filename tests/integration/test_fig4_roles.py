"""E4 — Figure 4: GateInterface in the roles of interface *and* component
of GateImplementation, with wiring across the composite.

Builds the figure's situation completely: a composite NAND-based gate whose
SubGates inherit from component interfaces, placed via GateLocation, wired
through the Wire subrel whose restriction spans inherited pins.
"""

import pytest

from repro.composition import (
    components_of,
    configuration,
    expand,
    visible_image,
    where_used,
)
from repro.errors import ConstraintViolation
from repro.workloads import (
    gate_database,
    generate_component_tree,
    make_implementation,
    make_interface,
)


@pytest.fixture
def db():
    return gate_database("fig4")


def build_figure4(db):
    """An implementation with its own interface and two NAND components,
    wired: external IN -> component1 IN, component1 OUT -> component2 IN,
    component2 OUT -> external OUT."""
    own_if = make_interface(db, length=40, width=20, n_in=1, n_out=1)
    impl = make_implementation(db, own_if)
    nand_if = make_interface(db, length=10, width=5, n_in=2, n_out=1)
    slots = [
        impl.subclass("SubGates").create(
            transmitter=nand_if, GateLocation={"X": 10 * i, "Y": 0}
        )
        for i in range(2)
    ]

    def pins(obj, direction):
        return [p for p in obj.get_member("Pins") if p["InOut"] == direction]

    wires = impl.subrel("Wire")
    wires.create({"Pin1": pins(own_if, "IN")[0], "Pin2": pins(slots[0], "IN")[0]})
    wires.create({"Pin1": pins(slots[0], "OUT")[0], "Pin2": pins(slots[1], "IN")[0]})
    wires.create({"Pin1": pins(slots[1], "OUT")[0], "Pin2": pins(own_if, "OUT")[0]})
    return impl, own_if, nand_if, slots


class TestFigure4:
    def test_shared_component_interface(self, db):
        impl, own_if, nand_if, slots = build_figure4(db)
        # Both slots inherit from the same interface object; pins are the
        # interface's pins, seen through both slots.
        assert slots[0]["Pins"] == slots[1]["Pins"]
        assert components_of(impl) == [(slots[0], nand_if), (slots[1], nand_if)]
        assert where_used(nand_if) == [impl]

    def test_wires_respect_restriction_over_inherited_pins(self, db):
        impl, own_if, nand_if, slots = build_figure4(db)
        assert len(impl.subrel("Wire")) == 3
        alien_if = make_interface(db)
        alien_pin = alien_if.subclass("Pins").members()[0]
        own_pin = own_if.subclass("Pins").members()[0]
        with pytest.raises(ConstraintViolation):
            impl.subrel("Wire").create({"Pin1": own_pin, "Pin2": alien_pin})

    def test_visible_image_of_slot(self, db):
        impl, own_if, nand_if, slots = build_figure4(db)
        image = visible_image(slots[0])
        assert image["Length"] == 10  # from the component interface
        assert image["GateLocation"].X == 0  # own placement
        assert len(image["Pins"]) == 3

    def test_expansion_materialises_both_roles(self, db):
        impl, own_if, nand_if, slots = build_figure4(db)
        expansion = expand(impl)
        assert own_if in expansion  # interface role
        assert nand_if in expansion  # component role
        assert all(slot in expansion for slot in slots)

    def test_configuration_tree(self, db):
        impl, own_if, nand_if, slots = build_figure4(db)
        tree = configuration(impl)
        assert len(tree.children) == 2
        assert all(child.component is nand_if for child in tree.children)

    def test_deep_component_tree(self, db):
        top, created = generate_component_tree(db, depth=3, fanout=2)
        # 1 + 2 + 4 + 8 = 15 implementations in the tree.
        assert created == 15
        tree = configuration(top)
        assert tree.size() == 15
        assert len(tree.leaves()) == 8
