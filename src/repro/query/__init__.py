"""Query language: ``select … from … where …`` over classes and types.

>>> from repro.query import run_query
>>> result = run_query(db, "select Length from Interfaces where Width > 5")
>>> result.scalars()
[...]

Execution is planned: sargable ``where`` conjuncts are answered from
incrementally-maintained value indexes when that beats a full scan (see
:mod:`repro.query.planner` and :mod:`repro.query.indexes`); full-scan
predicates over plan-resolvable members — inherited ones included — route
to materialized per-type views (:mod:`repro.query.views`).  Pass
``explain=True`` (or use ``repro query --explain``) to inspect the chosen
plan via ``result.plan``.
"""

from .executor import QueryResult, execute_query, run_query
from .indexes import IndexManager, ValueIndex
from .parser import QuerySpec, parse_query
from .planner import QueryPlan, Sarg, extract_sargs, plan_source, resolve_source
from .views import TypeView, ViewManager, view_eligible_names

__all__ = [
    "IndexManager",
    "QueryPlan",
    "QueryResult",
    "QuerySpec",
    "Sarg",
    "TypeView",
    "ValueIndex",
    "ViewManager",
    "execute_query",
    "extract_sargs",
    "parse_query",
    "plan_source",
    "resolve_source",
    "run_query",
    "view_eligible_names",
]
