"""Environments for version selection (§6 policy 3, after [DiLo85]).

An environment is configuration information *outside* both the composite
object and the component: a named mapping from design objects to the
version that should stand in for them, e.g. a "release-1.0" environment
pinning every component to its released version, or a "testing" environment
mixing in experimental versions.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from ..core.objects import DBObject
from ..core.surrogate import Surrogate
from ..errors import SelectionError

__all__ = ["Environment", "EnvironmentRegistry"]


class Environment:
    """A named design-object → version assignment."""

    def __init__(self, name: str, description: str = ""):
        self.name = name
        self.description = description
        self._assignments: Dict[Surrogate, DBObject] = {}

    def assign(self, design_object: DBObject, version: DBObject) -> None:
        """Pin ``design_object`` (e.g. an interface) to ``version``."""
        self._assignments[design_object.surrogate] = version

    def unassign(self, design_object: DBObject) -> None:
        self._assignments.pop(design_object.surrogate, None)

    def version_for(self, design_object: DBObject) -> Optional[DBObject]:
        """The pinned version, or None when the environment is silent."""
        return self._assignments.get(design_object.surrogate)

    def __len__(self) -> int:
        return len(self._assignments)

    def __repr__(self) -> str:
        return f"<Environment {self.name} assignments={len(self)}>"


class EnvironmentRegistry:
    """The environments known to one database/session."""

    def __init__(self) -> None:
        self._environments: Dict[str, Environment] = {}
        self._current: Optional[str] = None

    def create(self, name: str, description: str = "") -> Environment:
        if name in self._environments:
            raise SelectionError(f"environment {name!r} already exists")
        environment = Environment(name, description)
        self._environments[name] = environment
        return environment

    def get(self, name: str) -> Environment:
        try:
            return self._environments[name]
        except KeyError:
            raise SelectionError(f"unknown environment {name!r}") from None

    def activate(self, name: str) -> Environment:
        """Make ``name`` the session's current environment."""
        environment = self.get(name)
        self._current = name
        return environment

    @property
    def current(self) -> Optional[Environment]:
        return self._environments.get(self._current) if self._current else None

    def __iter__(self) -> Iterator[Environment]:
        return iter(self._environments.values())

    def __len__(self) -> int:
        return len(self._environments)
