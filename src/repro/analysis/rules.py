"""The rule implementations.

Model rules (:func:`run_model_rules`) need only a :class:`SchemaModel`;
database rules (:func:`run_database_rules`, :func:`run_query_rules`) need a
live :class:`~repro.engine.database.Database` — they check instance-level
invariants and workload/index fit, which have no static representation.

Severity follows the engine's *actual* behaviour, established rule by rule
against the builder and runtime: ``error`` means the schema cannot build or
an operation raises; ``warning`` means the engine accepts the schema but
resolves the oddity by a tie-break the author may not have intended (the
differential verifier in :mod:`repro.analysis.verify` enforces exactly this
split).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from ..errors import ExprSyntaxError
from ..expr import (
    Aggregate,
    Binary,
    Name,
    Node,
    Path,
    Quantified,
    Unary,
    parse_constraints,
    parse_expression,
)
from .diagnostics import Diagnostic, SourceLocation, WARNING, make
from .model import (
    INHERITANCE,
    OBJECT,
    RELATIONSHIP,
    MemberDecl,
    Ref,
    SchemaModel,
    TypeInfo,
)

__all__ = [
    "run_model_rules",
    "run_database_rules",
    "run_query_rules",
    "diagnostics_from_violations",
    "free_names",
]

#: Names every evaluation context can resolve on any object.
_ALWAYS_VISIBLE = frozenset(["surrogate"])

#: The implicit roles of every inheritance relationship type.
_IMPLICIT_INHERITANCE_ROLES = ("transmitter", "inheritor")


# ---------------------------------------------------------------------------
# shared helpers
# ---------------------------------------------------------------------------


def _loc(model: SchemaModel, line: Optional[int]) -> SourceLocation:
    return SourceLocation(model.source_path, line)


def free_names(node: Node, bound: FrozenSet[str] = frozenset()) -> Set[str]:
    """Identifiers ``node`` resolves against its evaluation context.

    Mirrors the evaluator's scoping: aggregate ``where`` clauses see the
    binder and the argument path's display names, quantifier bodies see the
    binders declared so far.  Only the *base* of a dotted path counts — its
    segments resolve against whatever the base yields, which static
    analysis cannot see.
    """
    out: Set[str] = set()
    _collect_free(node, bound, out)
    return out


def _collect_free(node: Node, bound: FrozenSet[str], out: Set[str]) -> None:
    if isinstance(node, Name):
        if node.identifier not in bound:
            out.add(node.identifier)
    elif isinstance(node, Path):
        _collect_free(node.base, bound, out)
    elif isinstance(node, Unary):
        _collect_free(node.operand, bound, out)
    elif isinstance(node, Binary):
        _collect_free(node.left, bound, out)
        _collect_free(node.right, bound, out)
    elif isinstance(node, Aggregate):
        _collect_free(node.arg, bound, out)
        if node.where is not None:
            _collect_free(node.where, bound | set(node._element_names()), out)
    elif isinstance(node, Quantified):
        inner = set(bound)
        for name, source in node.binders:
            _collect_free(source, frozenset(inner), out)
            inner.add(name)
        for constraint in node.body:
            _collect_free(constraint, frozenset(inner), out)


def _references(model: SchemaModel) -> Iterator[Tuple[TypeInfo, Ref, str]]:
    """Every by-name type reference in the model: (referrer, ref, site).

    Subclass entries whose target is a synthesized anonymous type are
    skipped — the dotted name never appears in source.
    """
    for info in model.types.values():
        for member in info.members.values():
            if member.kind == "subclass" and member.target:
                target = model.resolve(member.target)
                if target is not None and target.anonymous:
                    continue
                yield info, Ref(
                    member.target, member.line,
                    f"subclass {member.name!r} of {info.name}",
                ), "subclass"
            elif member.kind == "subrel" and member.target:
                yield info, Ref(
                    member.target, member.line,
                    f"subrel {member.name!r} of {info.name}",
                ), "subrel"
        for ref in info.inheritor_in:
            yield info, ref, "inheritor-in"
        if info.transmitter is not None:
            yield info, info.transmitter, "transmitter"
        if info.inheritor_restriction is not None:
            yield info, info.inheritor_restriction, "inheritor-restriction"
        for group in info.participants:
            if group.type_name:
                yield info, Ref(
                    group.type_name, group.line,
                    f"role {', '.join(group.roles)} of {info.name}",
                ), "participant"


def _sccs(nodes: Sequence[str], edges: Dict[str, List[str]]) -> List[List[str]]:
    """Strongly connected components (iterative Tarjan), discovery order."""
    index_of: Dict[str, int] = {}
    low: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    components: List[List[str]] = []
    counter = 0

    for root in nodes:
        if root in index_of:
            continue
        work = [(root, iter(edges.get(root, [])))]
        index_of[root] = low[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            pushed = False
            for succ in successors:
                if succ not in index_of:
                    index_of[succ] = low[succ] = counter
                    counter += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(edges.get(succ, []))))
                    pushed = True
                    break
                if succ in on_stack:
                    low[node] = min(low[node], index_of[succ])
            if pushed:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index_of[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
    return components


def _cycles(edges_list: List[Tuple[str, str]]) -> List[List[str]]:
    """Cyclic SCCs (size > 1, or a self-loop) of an edge list."""
    nodes: List[str] = []
    seen: Set[str] = set()
    adjacency: Dict[str, List[str]] = {}
    self_loops: Set[str] = set()
    for src, dst in edges_list:
        for node in (src, dst):
            if node not in seen:
                seen.add(node)
                nodes.append(node)
        adjacency.setdefault(src, []).append(dst)
        if src == dst:
            self_loops.add(src)
    return [
        component
        for component in _sccs(nodes, adjacency)
        if len(component) > 1 or component[0] in self_loops
    ]


def _cycle_text(component: Sequence[str]) -> str:
    ring = list(component) + [component[0]]
    return " -> ".join(ring)


def _ordered_inheritance_rels(
    model: SchemaModel, info: TypeInfo
) -> List[TypeInfo]:
    """Declared ``inheritor-in`` rels plus restriction-implied ones.

    ``inheritor: object-of-type X`` registers the relationship on X exactly
    as if X had declared it, so diamond detection must see both; declared
    entries keep their written order (the engine's tie-break).
    """
    declared = model.inheritance_rels_of(info)
    names = {rel.name for rel in declared}
    implied = []
    for rel in model.types.values():
        if (
            rel.kind != INHERITANCE
            or rel.inheritor_restriction is None
            or rel.name in names
        ):
            continue
        restricted = model.resolve(rel.inheritor_restriction.name)
        if restricted is not None and restricted.name == info.name:
            implied.append(rel)
    implied.sort(key=lambda rel: rel.index)
    return declared + implied


def _visible_names(model: SchemaModel, info: TypeInfo) -> Set[str]:
    """Names a constraint anchored at ``info`` can plausibly resolve."""
    visible = set(model.effective_members(info))
    for group in info.participants:
        visible.update(group.roles)
    if info.kind == INHERITANCE:
        visible.update(_IMPLICIT_INHERITANCE_ROLES)
    visible |= model.enum_labels
    visible |= _ALWAYS_VISIBLE
    return visible


# ---------------------------------------------------------------------------
# REP1xx — schema graph
# ---------------------------------------------------------------------------


def rule_unknown_reference(model: SchemaModel) -> Iterator[Diagnostic]:
    """REP102: references to types/domains that are never declared."""
    for info, ref, _site in _references(model):
        if model.resolve(ref.name) is None:
            yield make(
                "REP102",
                f"{ref.context} references undeclared type {ref.name!r}",
                subject=info.name,
                location=_loc(model, ref.line),
                hint="declare the type or fix the spelling",
            )
    for owner, refs in model.domain_refs.items():
        for ref in refs:
            if not model.has_domain(ref.name):
                yield make(
                    "REP102",
                    f"attribute of {owner} uses undeclared domain {ref.name!r}",
                    subject=owner,
                    location=_loc(model, ref.line),
                    hint=f"add a `domain {ref.name} = ...;` declaration",
                )


def rule_forward_reference(model: SchemaModel) -> Iterator[Diagnostic]:
    """REP108: references the single-pass builder cannot yet resolve.

    Only ``inheritor: object-of-type T`` restrictions may point forward —
    the builder resolves those in a dedicated second pass (the paper's §5
    AllOf_GirderIf declares its inheritor before Girder exists).
    """
    for info, ref, site in _references(model):
        if site == "inheritor-restriction":
            continue
        target = model.resolve(ref.name)
        if target is None or target.anonymous:
            continue
        if target.index > info.index or target.name == info.name:
            yield make(
                "REP108",
                f"{ref.context} references {target.name!r} before its "
                f"declaration completes",
                subject=info.name,
                location=_loc(model, ref.line),
                hint=f"declare {target.name!r} above {info.name!r} "
                     "(only inheritor restrictions may be forward)",
            )


def rule_kind_mismatch(model: SchemaModel) -> Iterator[Diagnostic]:
    """REP107: a reference resolves, but to the wrong kind of declaration.

    The builder enforces kinds for subclass/subrel/inheritor-in targets
    (build failure → error); transmitter, inheritor-restriction and
    participant types are accepted as any ``TypeBase`` (legal but almost
    certainly unintended → warning).
    """
    for info, ref, site in _references(model):
        target = model.resolve(ref.name)
        if target is None:
            continue
        if site == "subclass" and target.kind != OBJECT:
            yield make(
                "REP107",
                f"{ref.context} needs an object type but {target.name!r} "
                f"is a {target.kind} type",
                subject=info.name,
                location=_loc(model, ref.line),
            )
        elif site == "subrel" and target.kind == OBJECT:
            yield make(
                "REP107",
                f"{ref.context} needs a relationship type but "
                f"{target.name!r} is an object type",
                subject=info.name,
                location=_loc(model, ref.line),
            )
        elif site == "inheritor-in" and target.kind != INHERITANCE:
            yield make(
                "REP107",
                f"{ref.context} needs an inheritance relationship type but "
                f"{target.name!r} is a {target.kind} type",
                subject=info.name,
                location=_loc(model, ref.line),
            )
        elif (
            site in ("transmitter", "inheritor-restriction", "participant")
            and target.kind != OBJECT
        ):
            yield make(
                "REP107",
                f"{ref.context} names {target.name!r}, a {target.kind} type; "
                f"the engine accepts it but an object type is almost "
                f"certainly meant",
                subject=info.name,
                location=_loc(model, ref.line),
                severity=WARNING,
            )


def rule_inheritance_cycle(model: SchemaModel) -> Iterator[Diagnostic]:
    """REP101: type-level inheritance cycles (the builder rejects them)."""
    edges = [
        (inheritor, transmitter)
        for inheritor, transmitter, _rel in model.inheritance_edges()
    ]
    for component in _cycles(edges):
        anchor = model.types.get(component[0])
        yield make(
            "REP101",
            f"inheritance cycle: {_cycle_text(component)}",
            subject=component[0],
            location=_loc(model, anchor.line if anchor else None),
            hint="break the cycle by removing one inheritor-in declaration",
        )


def rule_relationship_arity(model: SchemaModel) -> Iterator[Diagnostic]:
    """REP103: role-set defects of relationship declarations."""
    for info in model.types.values():
        if info.kind == RELATIONSHIP:
            if not info.participants:
                yield make(
                    "REP103",
                    f"relationship type {info.name!r} relates no roles",
                    subject=info.name,
                    location=_loc(model, info.line),
                    hint="add a `relates:` clause with at least one role",
                )
            role_lines: Dict[str, Optional[int]] = {}
            for group in info.participants:
                for role in group.roles:
                    if role in role_lines:
                        yield make(
                            "REP103",
                            f"role {role!r} of {info.name!r} is declared "
                            f"twice; the later declaration silently wins",
                            subject=info.name,
                            location=_loc(model, group.line),
                            severity=WARNING,
                        )
                    role_lines[role] = group.line
                    member = info.members.get(role)
                    if member is not None:
                        yield make(
                            "REP103",
                            f"{info.name!r} declares {role!r} both as a "
                            f"role and as a {member.kind}",
                            subject=info.name,
                            location=_loc(model, group.line),
                            hint="rename the role or the member",
                        )
        elif info.kind == INHERITANCE:
            if info.transmitter is None:
                yield make(
                    "REP103",
                    f"inher-rel-type {info.name!r} declares no transmitter",
                    subject=info.name,
                    location=_loc(model, info.line),
                    hint="add `transmitter: object-of-type T;`",
                )
            for role in _IMPLICIT_INHERITANCE_ROLES:
                member = info.members.get(role)
                if member is not None:
                    yield make(
                        "REP103",
                        f"inher-rel-type {info.name!r} declares a "
                        f"{member.kind} named {role!r}, clashing with its "
                        f"implicit {role} role",
                        subject=info.name,
                        location=_loc(model, member.line),
                        hint="rename the member",
                    )


def rule_bad_inheriting(model: SchemaModel) -> Iterator[Diagnostic]:
    """REP104: empty or internally duplicated ``inheriting:`` clauses."""
    for info in model.types.values():
        if info.kind != INHERITANCE:
            continue
        if not info.inheriting:
            yield make(
                "REP104",
                f"inher-rel-type {info.name!r} has an empty inheriting "
                f"clause (nothing would be permeable)",
                subject=info.name,
                location=_loc(model, info.line),
                hint="list at least one transmitter member",
            )
        seen: Set[str] = set()
        for member in info.inheriting:
            if member in seen:
                yield make(
                    "REP104",
                    f"inher-rel-type {info.name!r} lists {member!r} twice "
                    f"in its inheriting clause",
                    subject=info.name,
                    location=_loc(model, info.line),
                )
            seen.add(member)


def rule_duplicates(model: SchemaModel) -> Iterator[Diagnostic]:
    """REP105: re-declared types, domains and members."""
    for info in model.redeclared_types:
        yield make(
            "REP105",
            f"type {info.name!r} is declared more than once",
            subject=info.name,
            location=_loc(model, info.line),
        )
    for name, line in model.conflicting_domains:
        yield make(
            "REP105",
            f"domain {name!r} is re-declared with a different definition",
            subject=name,
            location=_loc(model, line),
            hint="identical re-declarations are tolerated; conflicting "
                 "ones are not",
        )
    for info in model.types.values():
        for dup in info.duplicate_members:
            original = info.members[dup.name]
            if dup.kind == original.kind:
                yield make(
                    "REP105",
                    f"{info.name!r} declares {dup.kind} {dup.name!r} twice; "
                    f"the later declaration silently wins",
                    subject=info.name,
                    location=_loc(model, dup.line),
                    severity=WARNING,
                )
            else:
                yield make(
                    "REP105",
                    f"{info.name!r} declares {dup.name!r} both as "
                    f"{original.kind} and as {dup.kind}",
                    subject=info.name,
                    location=_loc(model, dup.line),
                    hint="rename one of the members",
                )


def rule_end_name(model: SchemaModel) -> Iterator[Diagnostic]:
    """REP106: ``end X`` closing a declaration that is not named X.

    The paper's own listings do this (``end AllOf_BoltType`` closes
    AllOf_NutType); the parser tolerates it, so this is advice only.
    """
    for info in model.types.values():
        if info.end_name and info.end_name != info.name:
            yield make(
                "REP106",
                f"declaration of {info.name!r} is closed by "
                f"`end {info.end_name}`",
                subject=info.name,
                location=_loc(model, info.line),
            )


# ---------------------------------------------------------------------------
# REP2xx — resolution / permeability
# ---------------------------------------------------------------------------


def rule_permeability_hole(model: SchemaModel) -> Iterator[Diagnostic]:
    """REP201: ``inheriting`` names a member its transmitter doesn't have.

    Checked against the transmitter's *effective* members — it may itself
    inherit the name (the paper's GateInterface passes on Pins inherited
    from GateInterface_I).
    """
    for info in model.types.values():
        if info.kind != INHERITANCE:
            continue
        transmitter = model.transmitter_of(info)
        if transmitter is None:
            continue
        effective = model.effective_members(transmitter)
        for member in info.inheriting:
            if member not in effective:
                yield make(
                    "REP201",
                    f"inher-rel-type {info.name!r} makes {member!r} "
                    f"permeable but transmitter {transmitter.name!r} has "
                    f"no such member",
                    subject=info.name,
                    location=_loc(model, info.line),
                    hint=f"declare {member!r} on {transmitter.name!r} or "
                         f"drop it from the inheriting clause",
                )


def rule_local_shadow(model: SchemaModel) -> Iterator[Diagnostic]:
    """REP202: a type declares a member it would also inherit."""
    for inheritor_name, _transmitter_name, rel_name in model.inheritance_edges():
        inheritor = model.types.get(inheritor_name)
        rel = model.types.get(rel_name)
        if inheritor is None or rel is None:
            continue
        for member in rel.inheriting:
            if member in inheritor.members:
                yield make(
                    "REP202",
                    f"{inheritor.name!r} declares {member!r} locally and "
                    f"also inherits it through {rel.name!r}",
                    subject=inheritor.name,
                    location=_loc(model, inheritor.members[member].line),
                    hint="drop the local member or the inheritor-in "
                         "declaration",
                )


def rule_diamonds(model: SchemaModel) -> Iterator[Diagnostic]:
    """REP203/REP204: members permeable through several relationships.

    Legal — resolution deterministically picks the first *bound* link in
    declaration order — but value-dependent dispatch surprises people, and
    a domain disagreement between the competing transmitters (REP204)
    makes the surprise typed.
    """
    for info in model.types.values():
        rels_for: Dict[str, List[TypeInfo]] = {}
        for rel in _ordered_inheritance_rels(model, info):
            for member in rel.inheriting:
                if member in info.members:
                    continue  # the shadow rule reports this
                rels_for.setdefault(member, []).append(rel)
        for member, rels in rels_for.items():
            if len(rels) < 2:
                continue
            names = ", ".join(rel.name for rel in rels)
            yield make(
                "REP203",
                f"member {member!r} of {info.name!r} is permeable through "
                f"{len(rels)} relationships ({names}); the first bound "
                f"link in declaration order wins, so which value appears "
                f"depends on bind order",
                subject=info.name,
                location=_loc(model, info.line),
                hint=f"restrict all but one inheriting clause, or accept "
                     f"that {rels[0].name!r} wins when all are bound",
            )
            domains: List[Tuple[str, str]] = []
            for rel in rels:
                transmitter = model.transmitter_of(rel)
                if transmitter is None:
                    continue
                found = model.effective_members(transmitter).get(member)
                if found is not None and found.kind == "attribute" and found.domain:
                    domains.append((transmitter.name, found.domain))
            if len({domain for _, domain in domains}) > 1:
                typed = ", ".join(f"{name}: {domain}" for name, domain in domains)
                yield make(
                    "REP204",
                    f"the transmitters competing for {member!r} of "
                    f"{info.name!r} type it differently ({typed})",
                    subject=info.name,
                    location=_loc(model, info.line),
                    hint="align the attribute domains or rename one member",
                )


def rule_restriction_bypass(model: SchemaModel) -> Iterator[Diagnostic]:
    """REP205: inheritor-in declared outside the inheritor restriction.

    ``bind`` authorizes any type that *explicitly* declared inheritor-in,
    even when it does not conform to the relationship's ``inheritor:``
    restriction — the paper's §5 WeightCarrying_Structure pattern — so
    this is a warning, not an error.
    """
    for info in model.types.values():
        for ref in info.inheritor_in:
            rel = model.resolve(ref.name)
            if rel is None or rel.kind != INHERITANCE:
                continue
            if rel.inheritor_restriction is None:
                continue
            restricted = model.resolve(rel.inheritor_restriction.name)
            if restricted is None:
                continue
            if not model.conforms(info, restricted):
                yield make(
                    "REP205",
                    f"{info.name!r} declares inheritor-in {rel.name!r} but "
                    f"does not conform to its inheritor restriction "
                    f"{restricted.name!r}; the explicit declaration "
                    f"authorizes binds anyway",
                    subject=info.name,
                    location=_loc(model, ref.line),
                )


def rule_constraints(model: SchemaModel) -> Iterator[Diagnostic]:
    """REP206/REP207: constraint blocks that don't parse or reference
    names invisible at their anchor type.

    Unknown names don't crash evaluation — the evaluator falls back to
    treating them as literal labels (the enum convention) — so REP206 is a
    warning; a parse failure aborts the schema build, so REP207 is an
    error.
    """
    for info in model.types.values():
        if not info.constraint_sources:
            continue
        visible = _visible_names(model, info)
        for source in info.constraint_sources:
            try:
                nodes = parse_constraints(source)
            except ExprSyntaxError as exc:
                yield make(
                    "REP207",
                    f"constraints of {info.name!r} do not parse: {exc}",
                    subject=info.name,
                    location=_loc(model, info.constraints_line),
                )
                continue
            unknown: Set[str] = set()
            for node in nodes:
                unknown |= free_names(node) - visible
            for name in sorted(unknown):
                yield make(
                    "REP206",
                    f"constraint of {info.name!r} references {name!r}, "
                    f"which is not a member, role or enum label visible "
                    f"there; it will evaluate as the literal label "
                    f"{name!r}",
                    subject=info.name,
                    location=_loc(model, info.constraints_line),
                    hint="declare the member or use a quoted literal",
                )


# ---------------------------------------------------------------------------
# REP3xx — composition
# ---------------------------------------------------------------------------


def rule_composite_recursion(model: SchemaModel) -> Iterator[Diagnostic]:
    """REP301: a type reachable from itself through subclass containment.

    Each concrete object graph is still finite (an object cannot contain
    itself), so the engine never fails — but the type admits unbounded
    nesting and every expansion/traversal cost is unbounded by the schema.
    """
    edges = [
        (owner, element)
        for owner, element, _member in model.composition_edges()
    ]
    for component in _cycles(edges):
        anchor = model.types.get(component[0])
        yield make(
            "REP301",
            f"composite recursion: {_cycle_text(component)}; the schema "
            f"admits unboundedly deep part hierarchies",
            subject=component[0],
            location=_loc(model, anchor.line if anchor else None),
        )


def rule_subrel_where(model: SchemaModel) -> Iterator[Diagnostic]:
    """REP302/REP207: subrel ``where`` clauses outside their binding scope.

    The clause is evaluated per candidate relationship, bound under the
    subrel's alias set (name, singular, relationship type name, type name
    minus ``Type``), in the owner's member scope.
    """
    for info in model.types.values():
        effective = set(model.effective_members(info))
        for member in info.members.values():
            if member.kind != "subrel" or not member.where_source:
                continue
            try:
                node = parse_expression(member.where_source)
            except ExprSyntaxError as exc:
                yield make(
                    "REP207",
                    f"where clause of subrel {member.name!r} of "
                    f"{info.name!r} does not parse: {exc}",
                    subject=info.name,
                    location=_loc(model, member.line),
                )
                continue
            visible = (
                _subrel_aliases(model, member)
                | effective
                | model.enum_labels
                | _ALWAYS_VISIBLE
            )
            for name in sorted(free_names(node) - visible):
                yield make(
                    "REP302",
                    f"where clause of subrel {member.name!r} of "
                    f"{info.name!r} references {name!r}, which is neither "
                    f"a binding alias nor a member of {info.name!r}",
                    subject=info.name,
                    location=_loc(model, member.line),
                    hint=f"bindable aliases here: "
                         f"{', '.join(sorted(_subrel_aliases(model, member)))}",
                )


def _subrel_aliases(model: SchemaModel, member: MemberDecl) -> Set[str]:
    """Mirror of ``SubrelSpec.binding_names`` over the model."""
    names = [member.name]
    if member.name.endswith("s") and len(member.name) > 1:
        names.append(member.name[:-1])
    type_names = []
    if member.target:
        type_names.append(member.target)
        resolved = model.resolve(member.target)
        if resolved is not None and resolved.name != member.target:
            type_names.append(resolved.name)
    for type_name in type_names:
        names.append(type_name)
        if type_name.lower().endswith("type") and len(type_name) > 4:
            names.append(type_name[:-4])
    return set(names)


# ---------------------------------------------------------------------------
# REP4xx — transactions / locking
# ---------------------------------------------------------------------------


def rule_lock_order_cycle(model: SchemaModel) -> Iterator[Diagnostic]:
    """REP401: mixed composition/inheritance lock-scope cycles.

    Expansion locking walks owner → element; inherited-read locking walks
    inheritor → transmitter.  A cycle using *both* edge kinds means two
    transactions taking the two plans can acquire the same types in
    opposite orders.  (Pure cycles are REP101/REP301 territory.)
    """
    adjacency: Dict[str, List[str]] = {}
    kinds: Dict[Tuple[str, str], Set[str]] = {}
    nodes: List[str] = []
    seen: Set[str] = set()

    def add(src: str, dst: str, kind: str) -> None:
        adjacency.setdefault(src, []).append(dst)
        kinds.setdefault((src, dst), set()).add(kind)
        for node in (src, dst):
            if node not in seen:
                seen.add(node)
                nodes.append(node)

    for inheritor, transmitter, _rel in model.inheritance_edges():
        add(inheritor, transmitter, "inherit")
    for owner, element, _member in model.composition_edges():
        add(owner, element, "compose")

    for component in _sccs(nodes, adjacency):
        members = set(component)
        if len(component) == 1 and component[0] not in adjacency.get(
            component[0], []
        ):
            continue
        kinds_present: Set[str] = set()
        for src in component:
            for dst in adjacency.get(src, []):
                if dst in members:
                    kinds_present |= kinds.get((src, dst), set())
        if kinds_present >= {"inherit", "compose"}:
            yield make(
                "REP401",
                f"types {_cycle_text(component)} form a mixed lock-scope "
                f"cycle: expansion plans lock owner -> element while "
                f"inherited-read plans lock inheritor -> transmitter, so "
                f"concurrent plans can deadlock",
                subject=component[0],
                location=_loc(
                    model,
                    model.types[component[0]].line
                    if component[0] in model.types else None,
                ),
                hint="break the cycle or serialise expansion and "
                     "inherited reads on these types",
            )


# ---------------------------------------------------------------------------
# REP5xx — query / compilation advisories (static half)
# ---------------------------------------------------------------------------


def rule_uncompilable_constraints(model: SchemaModel) -> Iterator[Diagnostic]:
    """REP504: constraints the expression compiler cannot slot-compile.

    The runtime compiler (:mod:`repro.expr.compile`) turns a constraint
    into a direct slot-array program when every free name binds statically
    to a stored member or role.  A free name bound to *nothing* resolves
    dynamically per object, which forces the interpretive fallback closure
    on every check.  Declared enum labels are exempt — writing them
    unquoted is the paper's own convention and their dynamic resolution is
    deliberate; undeclared names additionally trip REP206, but this rule
    states the *compilation* consequence.  Advisory only: the behaviour is
    correct, just not batch-fast.
    """
    for info in model.types.values():
        if not info.constraint_sources:
            continue
        bound = (
            set(model.effective_members(info))
            | set(_ALWAYS_VISIBLE)
            | model.enum_labels
        )
        for group in info.participants:
            bound.update(group.roles)
        if info.kind == INHERITANCE:
            bound.update(_IMPLICIT_INHERITANCE_ROLES)
        for source in info.constraint_sources:
            try:
                nodes = parse_constraints(source)
            except ExprSyntaxError:
                continue  # REP207 owns parse failures
            dynamic: Set[str] = set()
            for node in nodes:
                dynamic |= free_names(node) - bound
            if dynamic:
                names = ", ".join(repr(name) for name in sorted(dynamic))
                yield make(
                    "REP504",
                    f"constraint of {info.name!r} cannot compile to a slot "
                    f"program: {names} resolve{'s' if len(dynamic) == 1 else ''} "
                    f"dynamically per object (label literal or dynamic "
                    f"attribute)",
                    subject=info.name,
                    location=_loc(model, info.constraints_line),
                    hint="quote label literals so they compile as constants",
                )


def rule_view_ineligible_members(model: SchemaModel) -> Iterator[Diagnostic]:
    """REP505: inherited members the per-type views cannot materialize.

    The materialized-view engine (:mod:`repro.query.views`) flattens a
    type's plan-resolvable members into contiguous columns, but only
    attribute-valued ones: a permeable *container* member (subclass set or
    local relationship) yields live object collections whose contents
    mutate independently of any event the view could watch, so such
    members stay on the per-object resolution path.  Queries filtering on
    them never take the ``view`` access path.  Advisory only: results are
    identical, just not column-fast.
    """
    seen: Set[Tuple[str, str]] = set()
    for info in model.types.values():
        for rel in _ordered_inheritance_rels(model, info):
            transmitter = model.transmitter_of(rel)
            if transmitter is None:
                continue
            effective = model.effective_members(transmitter)
            for member in rel.inheriting:
                if member in info.members:
                    continue  # shadowed locally: REP202 territory
                decl = effective.get(member)
                if decl is None or decl.kind == "attribute":
                    continue
                if (info.name, member) in seen:
                    continue
                seen.add((info.name, member))
                yield make(
                    "REP505",
                    f"{info.name!r} inherits {decl.kind} member {member!r} "
                    f"through {rel.name!r}; container members cannot "
                    f"flatten into a view column, so queries filtering on "
                    f"{member!r} resolve it per object",
                    subject=info.name,
                    location=_loc(model, info.line),
                    hint="filter on attribute members (or an aggregate "
                         "pushed into the projection) to stay view-routable",
                )


# ---------------------------------------------------------------------------
# the model-rule registry
# ---------------------------------------------------------------------------

_MODEL_RULES = [
    rule_unknown_reference,
    rule_forward_reference,
    rule_kind_mismatch,
    rule_inheritance_cycle,
    rule_relationship_arity,
    rule_bad_inheriting,
    rule_duplicates,
    rule_end_name,
    rule_permeability_hole,
    rule_local_shadow,
    rule_diamonds,
    rule_restriction_bypass,
    rule_constraints,
    rule_composite_recursion,
    rule_subrel_where,
    rule_lock_order_cycle,
    rule_uncompilable_constraints,
    rule_view_ineligible_members,
]


def run_model_rules(model: SchemaModel) -> List[Diagnostic]:
    """Run every static rule over the model; unsorted, unfiltered."""
    findings: List[Diagnostic] = []
    for rule in _MODEL_RULES:
        findings.extend(rule(model))
    return findings


# ---------------------------------------------------------------------------
# database-backed rules
# ---------------------------------------------------------------------------


def diagnostics_from_violations(violations) -> List[Diagnostic]:
    """Map runtime integrity violations to their REP0xx diagnostics."""
    return [
        make(violation.code, violation.detail, subject=str(violation.subject))
        for violation in violations
    ]


def run_database_rules(db) -> List[Diagnostic]:
    """REP0xx: the runtime integrity invariants, as diagnostics."""
    from ..engine.integrity import check_integrity

    return diagnostics_from_violations(check_integrity(db))


def run_query_rules(db, queries: Sequence[str]) -> List[Diagnostic]:
    """REP5xx: workload queries vs the live schema and index state."""
    from ..core import resolution
    from ..errors import QueryError
    from ..query.parser import parse_query
    from ..query.planner import extract_sargs, resolve_source

    findings: List[Diagnostic] = []
    for text in queries:
        try:
            spec = parse_query(text)
        except (QueryError, ExprSyntaxError) as exc:
            findings.append(make(
                "REP502",
                f"workload query does not parse: {exc}",
                subject=text.strip(),
            ))
            continue
        try:
            source = resolve_source(db, spec.source_name)
        except QueryError as exc:
            findings.append(make(
                "REP502",
                str(exc),
                subject=spec.source_name,
                hint="create the class or declare the type before running "
                     "this workload",
            ))
            continue
        source_type = source.source_type()
        visible: Set[str] = set(_ALWAYS_VISIBLE)
        if source_type is not None:
            visible |= set(resolution.plan_for(source_type).entries)
        for domain in db.catalog.domains().values():
            labels = getattr(domain, "labels", None)
            if labels:
                visible.update(labels)
        referenced: Set[str] = set()
        if spec.where is not None:
            referenced |= free_names(spec.where)
        if spec.order_by is not None:
            referenced |= free_names(spec.order_by)
        for name in sorted(referenced - visible):
            findings.append(make(
                "REP503",
                f"query over {source.name!r} references {name!r}, which "
                f"{spec.source_name!r} cannot resolve",
                subject=spec.source_name,
            ))
        if spec.where is None:
            continue
        size = source.size()
        for sarg in extract_sargs(spec.where, source.concrete_types()):
            if size < db.indexes.min_index_source:
                continue
            if db.indexes.value_index(source.kind, source.name, sarg.attr) is None:
                findings.append(make(
                    "REP501",
                    f"query filters {source.name}.{sarg.attr} over "
                    f"{size} candidates with no value index; the first "
                    f"indexed run pays a full build",
                    subject=source.name,
                    hint="run the query once with auto-indexing enabled, "
                         "or pre-build the index",
                ))
    return findings
