"""The database facade.

A :class:`Database` bundles the pieces of the engine: a surrogate
generator, a catalog (schema), class extents, the object registry, the
event bus — and, attached lazily by the respective subsystems, transaction
and consistency managers.

Typical use::

    db = Database("gates")
    pin = db.catalog.define_object_type("PinType", attributes={"InOut": IO})
    iface = db.catalog.define_object_type(
        "GateInterface",
        attributes={"Length": INTEGER, "Width": INTEGER},
        subclasses={"Pins": pin},
    )
    all_of = db.catalog.define_inheritance_type(
        "AllOf_GateInterface", iface, ["Length", "Width", "Pins"]
    )
    impl = db.catalog.define_object_type("GateImplementation", ...)
    impl.declare_inheritor_in(all_of)

    db.create_class("Interfaces", iface)
    nand_if = db.create_object("GateInterface", class_name="Interfaces",
                               Length=40, Width=20)
    nand_v1 = db.create_object("GateImplementation", transmitter=nand_if)
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional, Union

from ..core.inheritance import InheritanceRelationshipType
from ..core.objects import (
    DBObject,
    InheritanceLink,
    RelationshipObject,
    bind,
    new_object,
    new_relationship,
)
from ..core.objtype import TypeBase
from ..core.reltype import RelationshipType
from ..core.surrogate import Surrogate, SurrogateGenerator
from ..errors import SchemaError, UnknownTypeError
from .catalog import Catalog
from .events import EventBus
from .storage import Extent

__all__ = ["Database"]

TypeRef = Union[str, TypeBase]


def _sanitize_by_env() -> bool:
    """True when ``REPRO_TSAN`` asks for the race sanitizer (cheap: no
    import of :mod:`repro.obs.race` unless it does)."""
    import os

    return os.environ.get("REPRO_TSAN", "") not in ("", "0")


class Database:
    """One object database: schema, extents, objects, events."""

    def __init__(
        self,
        name: str = "db",
        record_events: bool = False,
        observe: bool = False,
        sanitize: bool = False,
    ):
        # Imported here, not at module level: repro.query imports this
        # module for the executor, so the package edges meet at runtime.
        from ..query.indexes import IndexManager
        from ..query.views import ViewManager

        if sanitize or _sanitize_by_env():
            # Process-global by nature (the instrumented structures are
            # shared engine code, not per-database); idempotent.
            from ..obs import race

            race.enable()

        self.name = name
        self.surrogates = SurrogateGenerator(name)
        self.catalog = Catalog()
        self.events = EventBus(record=record_events)
        self._classes: Dict[str, Extent] = {}
        self._objects: Dict[Surrogate, DBObject] = {}
        #: Extent/value indexes + sargable-query planner state (repro.query).
        self.indexes = IndexManager(self)
        #: Materialized per-type inherited-relation views (repro.query.views).
        self.views = ViewManager(self)
        #: Set by repro.txn when a transaction manager attaches.
        self.transactions = None
        #: Set by repro.consistency when an adaptation tracker attaches.
        self.consistency = None
        #: The observability bundle (tracer/metrics/event tap), or None.
        #: The attribute always exists so hot paths pay one load + branch.
        self.obs = None
        if observe:
            self.enable_observability()

    # -- observability -----------------------------------------------------------

    def enable_observability(self, **options):
        """Attach (or return the existing) :class:`~repro.obs.Observability`.

        Options are forwarded to the bundle: ``tracing`` (default True),
        ``ring_size``, ``track_propagation``, ``audit`` (default True:
        keep the causal audit log), ``audit_ring``, ``audit_sink`` (a
        JSONL path or sink object), ``slowlog`` (default True: keep the
        slow-operation log), ``slow_budgets`` (per-kind latency budgets
        in seconds, e.g. ``{"query": 0.05}`` — see
        :data:`repro.obs.slowlog.DEFAULT_BUDGETS`), ``slowlog_ring``,
        ``flight_ring`` (sample capacity of the pull-based flight
        recorder reachable as ``obs.recorder``; the recorder costs
        nothing until ticked).
        """
        if self.obs is None:
            from ..obs import Observability

            self.obs = Observability(self, **options)
        return self.obs

    def explain_value(self, obj: DBObject, attribute: str):
        """Why would ``obj.get_member(attribute)`` return what it returns?

        Returns a :class:`~repro.obs.provenance.ValueProvenance`: the
        holder object, the inheritance path with every permeability
        decision, the epochs a memoised resolution validates against, and
        the value indexes tracking the reading.  Works whether or not
        observability is attached (the walk is pure inspection).
        """
        from ..obs.provenance import explain_value

        return explain_value(obj, attribute)

    def disable_observability(self) -> None:
        """Detach observability: the bus subscription is removed."""
        if self.obs is not None:
            self.obs.detach()
            self.obs = None

    # -- registry hooks (called from the core layer) ------------------------------

    def _adopt(self, obj: DBObject) -> None:
        """Track every object constructed against this database."""
        self._objects[obj.surrogate] = obj
        self.indexes.object_adopted(obj)
        self.views.object_adopted(obj)

    def _forget_object(self, obj: DBObject) -> None:
        self._objects.pop(obj.surrogate, None)
        for extent in self._classes.values():
            extent.discard(obj)
        self.indexes.object_forgotten(obj)
        self.views.object_forgotten(obj)

    # -- schema ------------------------------------------------------------------

    def _resolve_object_type(self, ref: TypeRef) -> TypeBase:
        if isinstance(ref, str):
            return self.catalog.type(ref)
        return ref

    def create_class(self, name: str, object_type: TypeRef) -> Extent:
        """Create a named class (extent) for objects of ``object_type``."""
        if name in self._classes:
            raise SchemaError(f"class {name!r} already exists")
        resolved = self._resolve_object_type(object_type)
        extent = Extent(name, resolved, database=self)
        self._classes[name] = extent
        return extent

    def class_(self, name: str) -> Extent:
        """Look up a class by name."""
        try:
            return self._classes[name]
        except KeyError:
            raise UnknownTypeError(f"unknown class {name!r}") from None

    def classes(self) -> Dict[str, Extent]:
        return dict(self._classes)

    # -- object lifecycle -----------------------------------------------------------

    def create_object(
        self,
        object_type: TypeRef,
        class_name: Optional[str] = None,
        transmitter: Optional[DBObject] = None,
        via: Optional[InheritanceRelationshipType] = None,
        **attrs: Any,
    ) -> DBObject:
        """Create a top-level object, optionally filing it in a class.

        ``transmitter``/``via`` bind the new object through an inheritance
        relationship immediately (§4.1).
        """
        resolved = self._resolve_object_type(object_type)
        obj = new_object(
            resolved, database=self, transmitter=transmitter, via=via, **attrs
        )
        if class_name is not None:
            self.class_(class_name).add(obj)
        self.events.emit("object_created", subject=obj, class_name=class_name)
        return obj

    def create_relationship(
        self,
        rel_type: TypeRef,
        participants: Mapping[str, Any],
        **attrs: Any,
    ) -> RelationshipObject:
        """Create a free-standing (non-local) relationship object."""
        resolved = self._resolve_object_type(rel_type)
        if not isinstance(resolved, RelationshipType):
            raise SchemaError(f"{resolved!r} is not a relationship type")
        rel = new_relationship(resolved, participants, database=self, **attrs)
        self.events.emit("object_created", subject=rel, class_name=None)
        return rel

    def bind(
        self,
        inheritor: DBObject,
        transmitter: DBObject,
        rel_type: Union[str, InheritanceRelationshipType],
        **link_attrs: Any,
    ) -> InheritanceLink:
        """Bind an inheritor to a transmitter (see :func:`repro.core.bind`)."""
        if isinstance(rel_type, str):
            rel_type = self.catalog.inheritance_type(rel_type)
        return bind(inheritor, transmitter, rel_type, **link_attrs)

    def add_to_class(self, obj: DBObject, class_name: str) -> None:
        """File an existing object in a (further) class."""
        self.class_(class_name).add(obj)
        self.events.emit("class_member_added", subject=obj, class_name=class_name)

    # -- lookup & queries ---------------------------------------------------------

    def get(self, surrogate: Surrogate) -> Optional[DBObject]:
        """The live object with this surrogate, if any."""
        return self._objects.get(surrogate)

    def objects(self) -> List[DBObject]:
        """Snapshot of every live object tracked by the database."""
        return list(self._objects.values())

    def objects_of_type(
        self, object_type: TypeRef, include_subtypes: bool = True
    ) -> List[DBObject]:
        """All live objects of a type (by default including subtypes).

        Served from the per-type extent index in O(result); the answer —
        content and order — matches :meth:`naive_objects_of_type`, the
        original full-registry scan kept as the test oracle.
        """
        resolved = self._resolve_object_type(object_type)
        return self.indexes.objects_of_type(resolved, include_subtypes)

    def naive_objects_of_type(
        self, object_type: TypeRef, include_subtypes: bool = True
    ) -> List[DBObject]:
        """Full-registry scan oracle for :meth:`objects_of_type` (O(db))."""
        resolved = self._resolve_object_type(object_type)
        if include_subtypes:
            return [
                obj
                for obj in self._objects.values()
                if obj.object_type.conforms_to(resolved)
            ]
        return [
            obj for obj in self._objects.values() if obj.object_type is resolved
        ]

    def select(
        self,
        source: Union[str, Iterable[DBObject]],
        where: Union[None, str, Any] = None,
    ) -> List[DBObject]:
        """Select objects from a class (by name) or any iterable.

        ``where`` is either a constraint-language expression evaluated
        against each object, or a Python predicate.  Class-name sources
        with expression conditions are planned (sargable conjuncts may be
        answered from a value index); the full condition is still applied
        to every candidate.
        """
        from .query import evaluate_predicate

        if isinstance(source, str):
            extent = self.class_(source)
            if where is not None and isinstance(where, str):
                from ..expr import EvalContext, parse_expression, truthy
                from ..expr.compile import compile_predicate
                from ..query.planner import class_source, plan_source

                node = parse_expression(where)
                _, candidates = plan_source(
                    self, class_source(self, extent), node, text=where
                )
                # One compiled slot program per concrete type; deleted
                # candidates keep the interpretive walk (it owns the
                # ObjectDeletedError protocol).
                obs = getattr(self, "obs", None)
                preds: Dict[int, Any] = {}
                kept = []
                for obj in candidates:
                    if obj._row >= 0:
                        predicate = preds.get(id(obj.object_type))
                        if predicate is None:
                            predicate = preds[id(obj.object_type)] = (
                                compile_predicate(node, obj.object_type, obs)
                            )
                        if predicate(obj):
                            kept.append(obj)
                    elif truthy(node.evaluate(EvalContext(obj))):
                        kept.append(obj)
                return kept
            candidates: Iterable[DBObject] = extent
        else:
            candidates = source
        if where is None:
            return list(candidates)
        predicate = evaluate_predicate(where)
        return [obj for obj in candidates if predicate(obj)]

    def query(self, text: str):
        """Run a ``select … from … where …`` query (see :mod:`repro.query`)."""
        from ..query import run_query

        return run_query(self, text)

    def count(self) -> int:
        return len(self._objects)

    def check_all_constraints(self) -> None:
        """Deep-check constraints of every top-level object (diagnostics)."""
        for obj in self.objects():
            if obj.parent is None and not obj.deleted:
                obj.check_constraints(deep=True)

    def __repr__(self) -> str:
        return (
            f"<Database {self.name!r} objects={len(self._objects)} "
            f"classes={len(self._classes)} types={len(self.catalog)}>"
        )
