"""Lock inheritance (§6).

*"When accessing a composite object, we have to deal with
'lock-inheritance' in the reverse direction of data inheritance: Accessing
the data of a composite object which are inherited from a component
requires to prevent the component also from being updated.  Thus, the parts
of the component which are visible in the composite object have to be
read-locked when the data is touched in the composite object."*

:func:`inherited_lock_plan` computes exactly which scoped read locks a read
of an object entails: for every bound inheritance link, the permeable
members on the transmitter — transitively, because the transmitter may
itself inherit some of those members from higher up the abstraction
hierarchy.
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional, Set, Tuple

from ..core import resolution as _resolution
from ..core.objects import DBObject
from ..core.surrogate import Surrogate
from .locks import LockMode

__all__ = [
    "inherited_lock_plan",
    "expansion_lock_plan",
    "note_inherited_conflict",
]

#: (object, members-to-lock) — members None means the whole object.
LockPlanItem = Tuple[DBObject, Optional[FrozenSet[str]]]


def inherited_lock_plan(
    obj: DBObject, members: Optional[FrozenSet[str]] = None
) -> List[LockPlanItem]:
    """Scoped transmitter read locks entailed by reading ``obj``.

    ``members`` restricts the read to some member names; only the links
    whose permeable set intersects it contribute.  The returned plan does
    **not** include ``obj`` itself.
    """
    plan: List[LockPlanItem] = []
    _collect(obj, members, plan, set())
    obs = getattr(obj.database, "obs", None)
    if obs is not None:
        obs.metrics.counter("locks.inherited_plans").inc()
        obs.metrics.histogram("locks.inherited_plan_size").observe(len(plan))
        audit = obs.audit
        if audit is not None:
            audit.record("lock.inherited_plan", obj, size=len(plan))
    return plan


def note_inherited_conflict(obs, obj, transmitter, exc, txn=None) -> None:
    """Count and audit a conflict hit while acquiring §6 inherited locks.

    Called by the transaction layer when the scoped read lock on a
    *transmitter* (not the object the session asked for) is what
    conflicted — the reverse-direction contention lock inheritance
    creates.  Separating these from direct conflicts is what lets the
    health rules and ``repro top`` tell "two writers on one object" apart
    from "a composite reader starved by component writers".
    """
    if obs is None:
        return
    obs.metrics.counter("locks.conflicts.inherited").inc()
    audit = obs.audit
    if audit is not None:
        audit.record(
            "lock.inherited_conflict",
            transmitter,
            inheritor=repr(obj),
            holder=getattr(exc, "holder", None),
            txn=txn,
        )


def _collect(
    obj: DBObject,
    members: Optional[FrozenSet[str]],
    plan: List[LockPlanItem],
    seen: Set[Surrogate],
) -> None:
    permeable_sets = _resolution.plan_for(obj.object_type).permeable_sets
    for link in obj.inheritance_links:
        # The plan interned one frozenset per inheritance relationship, so
        # no per-plan frozenset rebuilds here.
        permeable = permeable_sets.get(link.rel_type.name)
        if permeable is None:
            permeable = frozenset(link.rel_type.inheriting)
        relevant = permeable if members is None else permeable & members
        if not relevant:
            continue
        transmitter = link.transmitter
        plan.append((transmitter, relevant))
        if transmitter.surrogate not in seen:
            seen.add(transmitter.surrogate)
            # The transmitter may pass on members it inherits itself
            # (interface hierarchies): lock those upstream too.
            _collect(transmitter, relevant, plan, seen)


def expansion_lock_plan(
    composite: DBObject, mode: str = LockMode.S
) -> List[Tuple[DBObject, Optional[FrozenSet[str]], str]]:
    """The lock set for working on a composite object's expansion (§6).

    Covers the composite itself, its whole subobject tree, and — through
    lock inheritance — the visible parts of every component the expansion
    materialises.  Components' *own* entries are scoped to their permeable
    members; everything inside the composite is locked whole.

    Returns ``(object, scope, mode)`` triples; the transaction layer caps
    each mode through access control before acquiring.
    """
    from ..composition.composite import expand

    obs = getattr(composite.database, "obs", None)
    plan: List[Tuple[DBObject, Optional[FrozenSet[str]], str]] = []
    listed: Set[Surrogate] = set()

    expansion = expand(composite)
    own_tree: Set[Surrogate] = set()

    def collect_tree(obj: DBObject) -> None:
        own_tree.add(obj.surrogate)
        for name in obj.subclass_names():
            if obj.is_member_inherited(name):
                continue
            for member in obj.subclass(name):
                collect_tree(member)

    collect_tree(composite)

    for obj in expansion.objects:
        if obj.surrogate in listed:
            continue
        listed.add(obj.surrogate)
        if obj.surrogate in own_tree:
            plan.append((obj, None, mode))
        else:
            # A component reached through a link: only its visible part is
            # locked, and never exclusively through mere expansion.
            visible: Set[str] = set()
            for link in obj.inheritor_links:
                inheritor = link.inheritor
                if inheritor.surrogate in listed or (
                    inheritor.surrogate in own_tree
                ):
                    permeable = _resolution.plan_for(
                        inheritor.object_type
                    ).permeable_sets.get(link.rel_type.name)
                    if permeable is None:
                        permeable = frozenset(link.rel_type.inheriting)
                    visible |= permeable
            scope = frozenset(visible) if visible else None
            plan.append((obj, scope, LockMode.S))
    if obs is not None:
        obs.metrics.counter("locks.expansion_plans").inc()
        obs.metrics.histogram("locks.expansion_plan_size").observe(len(plan))
        audit = obs.audit
        if audit is not None:
            audit.record("lock.expansion_plan", composite, size=len(plan))
    return plan
