"""Interning pools for attribute names and surrogates.

Hot lookup paths probe dictionaries keyed by attribute-name strings
(resolution-plan entries, slot-index maps, member memos) and by
:class:`~repro.core.surrogate.Surrogate` tokens (object registries, lock
tables, value indexes).  CPython's dict probe short-circuits on *identity*
before falling back to ``__eq__`` — so handing every subsystem the one
canonical instance of each name and surrogate turns the common hit into a
pointer compare.

The pools are process-global (types and surrogate spaces exist outside any
single database) and exposed per-catalog through
:attr:`repro.engine.catalog.Catalog.interning`, so engine code interns
"at creation time" through the catalog it is already holding:

* :func:`intern_name` — canonical attribute/member name strings, built on
  :func:`sys.intern` so the pool cooperates with CPython's own identifier
  interning (parsed query identifiers and schema declarations meet in the
  same instance).
* :func:`intern_surrogate` — canonical :class:`Surrogate` instances, held
  weakly so pooling never extends object lifetime.  Fresh surrogates are
  registered by :meth:`SurrogateGenerator.fresh`; reconstruction sites
  (persistence load, CLI selectors) resolve to the already-live token.
"""

from __future__ import annotations

import sys
from typing import TYPE_CHECKING, Dict, Tuple
from weakref import WeakValueDictionary

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .surrogate import Surrogate

__all__ = ["InternPool", "intern_name", "intern_surrogate", "interning_stats"]

#: Canonical attribute-name strings.  Values come from ``sys.intern`` so a
#: pooled name is *the* interpreter-wide instance of its spelling.
_NAMES: Dict[str, str] = {}

#: Canonical live surrogates, keyed by ``(space, value)``.  Weak values:
#: the pool tracks, it never retains.
_SURROGATES: "WeakValueDictionary[Tuple[str, int], Surrogate]" = (
    WeakValueDictionary()
)


def intern_name(name: str) -> str:
    """The canonical instance of an attribute/member name string."""
    pooled = _NAMES.get(name)
    if pooled is None:
        pooled = _NAMES[name] = sys.intern(name)
    return pooled


def intern_surrogate(surrogate: "Surrogate") -> "Surrogate":
    """The canonical live instance of ``surrogate``.

    The first instance seen for a ``(space, value)`` pair becomes the
    canonical one; later reconstructions (persistence load, CLI parsing)
    are folded onto it so registry/lock-table probes compare by identity.
    """
    key = (surrogate.space, surrogate.value)
    pooled = _SURROGATES.get(key)
    if pooled is None:
        _SURROGATES[key] = surrogate
        return surrogate
    return pooled


def interning_stats() -> Dict[str, int]:
    """Pool sizes (diagnostics / tests)."""
    return {
        "interning.names": len(_NAMES),
        "interning.surrogates": len(_SURROGATES),
    }


class InternPool:
    """Facade over the shared pools, exposed as ``catalog.interning``.

    All catalogs share one pool by design — a name interned while defining
    a type in one database must be the same instance another database's
    query parser receives, or the identity fast path would silently
    degrade to string compares across databases.
    """

    __slots__ = ()

    def name(self, name: str) -> str:
        """Intern an attribute/member name string."""
        return intern_name(name)

    def surrogate(self, surrogate: "Surrogate") -> "Surrogate":
        """Intern a surrogate token."""
        return intern_surrogate(surrogate)

    def stats(self) -> Dict[str, int]:
        return interning_stats()

    def __repr__(self) -> str:  # pragma: no cover - trivial
        stats = interning_stats()
        return (
            f"<InternPool names={stats['interning.names']} "
            f"surrogates={stats['interning.surrogates']}>"
        )
