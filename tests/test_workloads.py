"""Tests for the synthetic workload generators (repro.workloads)."""


from repro.engine.integrity import assert_integrity
from repro.workloads import (
    gate_database,
    generate_component_tree,
    generate_composite,
    generate_library,
    generate_structure,
    make_flipflop,
    make_implementation,
    make_interface,
    steel_database,
)


class TestGateGenerators:
    def test_interface_shape(self):
        db = gate_database()
        iface = make_interface(db, length=12, width=6, n_in=3, n_out=2)
        assert iface["Length"] == 12
        pins = iface["Pins"]
        assert sum(1 for p in pins if p["InOut"] == "IN") == 3
        assert sum(1 for p in pins if p["InOut"] == "OUT") == 2

    def test_implementation_bound(self):
        db = gate_database()
        iface = make_interface(db)
        impl = make_implementation(db, iface, time_behavior=4)
        assert impl["TimeBehavior"] == 4
        assert impl.transmitter_of(
            db.catalog.inheritance_type("AllOf_GateInterface")
        ) is iface

    def test_library_deterministic(self):
        db_a, db_b = gate_database("a"), gate_database("b")
        ifaces_a, impls_a = generate_library(db_a, 5, 2, seed=99)
        ifaces_b, impls_b = generate_library(db_b, 5, 2, seed=99)
        assert [i["Length"] for i in ifaces_a] == [i["Length"] for i in ifaces_b]
        assert len(impls_a) == len(impls_b) == 10

    def test_library_seed_changes_output(self):
        db_a, db_b = gate_database("a"), gate_database("b")
        ifaces_a, _ = generate_library(db_a, 5, 1, seed=1)
        ifaces_b, _ = generate_library(db_b, 5, 1, seed=2)
        assert [i["Length"] for i in ifaces_a] != [i["Length"] for i in ifaces_b]

    def test_composite_reuses_components(self):
        db = gate_database()
        interfaces, _ = generate_library(db, 3, 1)
        composite = generate_composite(db, interfaces, n_components=10)
        assert len(composite["SubGates"]) == 10
        assert_integrity(db)

    def test_component_tree_counts(self):
        db = gate_database()
        top, created = generate_component_tree(db, depth=2, fanout=3)
        assert created == 1 + 3 + 9
        assert len(top["SubGates"]) == 3

    def test_flipflop_constraints(self):
        db = gate_database()
        ff, subgates = make_flipflop(db)
        ff.check_constraints(deep=True)
        assert len(subgates) == 2


class TestSteelGenerators:
    def test_structure_is_valid_by_construction(self):
        db = steel_database()
        structure, screwings = generate_structure(db, 2, 2, 4, seed=5)
        structure.check_constraints(deep=True)
        assert len(screwings) == 4
        assert_integrity(db)

    def test_structure_deterministic(self):
        db_a, db_b = steel_database("a"), steel_database("b")
        s_a, _ = generate_structure(db_a, 2, 2, 2, seed=7)
        s_b, _ = generate_structure(db_b, 2, 2, 2, seed=7)
        girders_a = [g["Length"] for g in s_a["Girders"]]
        girders_b = [g["Length"] for g in s_b["Girders"]]
        assert girders_a == girders_b

    def test_bolt_lengths_satisfy_formula(self):
        db = steel_database()
        _, screwings = generate_structure(db, 2, 2, 3)
        for screwing in screwings:
            bolt = screwing.subclass("Bolt").members()[0]
            nut = screwing.subclass("Nut").members()[0]
            bore_sum = sum(b["Length"] for b in screwing["Bores"])
            assert bolt["Length"] == nut["Length"] + bore_sum
