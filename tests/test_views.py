"""Tests for materialized per-type views (repro.query.views).

The contract under test is *oracle equivalence*: with value indexes off,
whatever the view engine answers must be identical — rows, objects, or
the raised exception — to the live resolution path
(``run_query(..., views=False)``).  The hypothesis property drives
randomized mutation scripts (attribute writes, binds, unbinds, deletes,
transaction aborts, version revert-and-reject, ``declare_inheritor_in``
rebinds) with the view built *early*, so incremental maintenance — not a
fresh build at query time — is what answers.

Deterministic tests pin the surfaces: the ``view`` access path in
EXPLAIN, the ``query.view.*`` counter family, staleness rebuilds on
schema changes, taint fallback, the REP505 advisory, provenance's
``materialized in`` line, and the parse-cache epoch regression.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.attributes import AttributeSpec
from repro.core.domains import ANY
from repro.core.inheritance import InheritanceRelationshipType
from repro.core.objtype import ObjectType
from repro.engine.database import Database
from repro.errors import ReproError, VersionError
from repro.query import run_query
from repro.txn.transactions import TransactionManager
from repro.versions.states import StateGuard

_counter = [0]


def _uname(prefix):
    _counter[0] += 1
    return f"{prefix}Vw{_counter[0]}"


def assert_view_queries_agree(db, text):
    """View-routed execution must match the live-resolution oracle exactly —
    rows, columns, objects, or the exception type and message."""
    try:
        oracle = run_query(db, text, views=False)
        oracle_exc = None
    except Exception as exc:  # noqa: BLE001 - re-asserted below
        oracle, oracle_exc = None, exc
    if oracle_exc is not None:
        with pytest.raises(type(oracle_exc)) as caught:
            run_query(db, text)
        assert str(caught.value) == str(oracle_exc)
        return
    viewed = run_query(db, text)
    assert viewed.columns == oracle.columns
    assert viewed.rows == oracle.rows
    if oracle.objects is not None:
        assert [o.surrogate for o in viewed.objects] == [
            o.surrogate for o in oracle.objects
        ]


# ---------------------------------------------------------------------------
# the randomized mutation-script oracle property
# ---------------------------------------------------------------------------

ALPHA_VALUES = (0, 1, 2, 3)
BETA_VALUES = (0, 1, 2, 3, 4, 5)


def _make_world():
    """Base/Sub types (Sub inherits alpha), one class, one view-only db."""
    base = ObjectType(
        _uname("Base"),
        attributes={"alpha": ANY, "beta": AttributeSpec("beta", ANY, default=0)},
    )
    rel = InheritanceRelationshipType(
        _uname("AllOfBase"), transmitter_type=base, inheriting=["alpha"]
    )
    sub = ObjectType(_uname("Sub"))
    sub.declare_inheritor_in(rel)
    db = Database(_uname("db"))
    db.indexes.auto = False  # isolate the view path from index routing
    db.views.min_view_source = 0
    db.catalog.register(base)
    db.catalog.register(sub)
    db.create_class("Things", base)
    return db, base, sub, rel


def _battery(db, base, sub):
    for text in (
        "select * from Things where alpha = 2",
        "select alpha, beta from Things where beta > 2",
        "select * from Things where alpha = 1 and beta >= 1",
        f"select * from {base.name} where alpha = 3",
        f"select * from {sub.name} where alpha = 0",
        f"select * from {sub.name} where alpha > 1",
    ):
        assert_view_queries_agree(db, text)


action = st.one_of(
    st.tuples(st.just("create_base"), st.sampled_from(ALPHA_VALUES),
              st.sampled_from(BETA_VALUES)),
    st.tuples(st.just("create_sub"), st.integers(0, 20)),
    st.tuples(st.just("set_alpha"), st.integers(0, 20),
              st.sampled_from(ALPHA_VALUES)),
    st.tuples(st.just("set_beta"), st.integers(0, 20),
              st.sampled_from(BETA_VALUES)),
    st.tuples(st.just("bind"), st.integers(0, 20), st.integers(0, 20)),
    st.tuples(st.just("unbind"), st.integers(0, 20)),
    st.tuples(st.just("delete"), st.integers(0, 20)),
    st.tuples(st.just("txn_abort"), st.integers(0, 20),
              st.sampled_from(BETA_VALUES)),
    st.tuples(st.just("revert"), st.integers(0, 20),
              st.sampled_from(BETA_VALUES)),
    st.tuples(st.just("declare_rebind"), st.integers(0, 20), st.integers(0, 20)),
)


@settings(max_examples=40, deadline=None)
@given(actions=st.lists(action, min_size=1, max_size=12))
def test_views_match_live_resolution_oracle(actions):
    db, base, sub, rel = _make_world()
    txns = TransactionManager(db)
    guard = StateGuard(db)
    objs = []
    for value in (0, 1, 2):
        objs.append(
            db.create_object(base, class_name="Things", alpha=value, beta=1)
        )
    # Prime the views now so the script below exercises the incremental
    # maintenance path, not a fresh build at query time.
    _battery(db, base, sub)

    def pick(i):
        return objs[i % len(objs)] if objs else None

    for step in actions:
        kind = step[0]
        if kind not in ("create_base", "create_sub") and pick(0) is None:
            continue
        try:
            if kind == "create_base":
                objs.append(
                    db.create_object(
                        base, class_name="Things", alpha=step[1], beta=step[2]
                    )
                )
            elif kind == "create_sub":
                transmitter = pick(step[1])
                obj = db.create_object(sub, class_name="Things")
                if transmitter is not None and transmitter.object_type is base:
                    db.bind(obj, transmitter, rel)
                objs.append(obj)
            elif kind == "set_alpha":
                pick(step[1]).set_attribute("alpha", step[2])
            elif kind == "set_beta":
                pick(step[1]).set_attribute("beta", step[2])
            elif kind == "bind":
                inheritor, transmitter = pick(step[1]), pick(step[2])
                if inheritor.object_type is sub and transmitter.object_type is base:
                    db.bind(inheritor, transmitter, rel)
            elif kind == "unbind":
                obj = pick(step[1])
                link = obj.link_for(rel)
                if link is not None:
                    link.unbind()
            elif kind == "delete":
                obj = pick(step[1])
                obj.delete(unbind_inheritors=True)
                objs = [o for o in objs if not o.deleted]
            elif kind == "txn_abort":
                obj = pick(step[1])
                txn = txns.begin()
                txn.set(obj, "beta", step[2])
                txn.abort()
            elif kind == "revert":
                obj = pick(step[1])
                if guard.state_of(obj) is None:
                    guard.release(obj)
                with pytest.raises(VersionError):
                    obj.set_attribute("beta", step[2])
            elif kind == "declare_rebind":
                # A schema change mid-life: a fresh inheritance declaration
                # bumps the schema epoch, dropping every view.
                new_rel = InheritanceRelationshipType(
                    _uname("LateRel"), transmitter_type=base, inheriting=["beta"]
                )
                sub.declare_inheritor_in(new_rel)
                inheritor, transmitter = pick(step[1]), pick(step[2])
                if inheritor.object_type is sub and transmitter.object_type is base:
                    db.bind(inheritor, transmitter, new_rel)
        except ReproError:
            # Illegal scripts (double bind, write-through-link, …) are
            # fine: the engine rejected them before either path ran.
            pass
        # One agreement probe per step catches staleness at the moment it
        # appears, not only at the end.
        assert_view_queries_agree(db, f"select * from {sub.name} where alpha = 1")

    _battery(db, base, sub)


# ---------------------------------------------------------------------------
# slotted-storage edge paths: overflow dicts, row recycling
# ---------------------------------------------------------------------------


def _iface_world(n=20, dynamic_sub=False):
    db = Database(_uname("gates"))
    db.indexes.auto = False
    db.views.min_view_source = 0
    iface = db.catalog.define_object_type("Iface", attributes={"Length": ANY})
    all_of = db.catalog.define_inheritance_type("AllOfIface", iface, ["Length"])
    impl = db.catalog.define_object_type("Impl", allow_dynamic=dynamic_sub)
    impl.declare_inheritor_in(all_of)
    interfaces = [db.create_object(iface, Length=i) for i in range(n)]
    impls = [
        db.create_object(impl, transmitter=interfaces[i]) for i in range(n)
    ]
    return db, interfaces, impls


def test_overflow_dict_attributes_do_not_disturb_views():
    """Dynamic attributes live in the per-object overflow dict, outside
    any plan entry: writes to them must neither refresh nor corrupt the
    view, and predicates over them must stay on the live path."""
    db, interfaces, impls = _iface_world(dynamic_sub=True)
    assert_view_queries_agree(db, "select * from Impl where Length = 3")
    refreshes = db.views.stats["query.view.refreshes"]
    impls[3].set_attribute("extra", 99)  # undeclared on Impl -> overflow
    assert impls[3]._overflow and "extra" in impls[3]._overflow
    assert db.views.stats["query.view.refreshes"] == refreshes
    for text in (
        "select * from Impl where extra = 99",
        "select * from Impl where Length = 3",
    ):
        assert_view_queries_agree(db, text)
    # The dynamic name is not a view column, so the view never answers it.
    result = run_query(db, "select * from Impl where extra = 99")
    assert result.plan.access_path == "full-scan"
    # A covered name still routes, reading past the overflow spill.
    result = run_query(db, "select * from Impl where Length = 3")
    assert result.plan.access_path == "view"
    assert len(result.rows) == 1


def test_unbound_local_write_refreshes_view():
    """After an unbind, the inheritor's own (formerly shadowed) slot value
    is what resolves; a subsequent local write must flow into the view."""
    db, interfaces, impls = _iface_world()
    assert_view_queries_agree(db, "select * from Impl where Length = 3")
    impls[3].link_for(db.catalog.inheritance_type("AllOfIface")).unbind()
    impls[3].set_attribute("Length", 99)
    for text in (
        "select * from Impl where Length = 99",
        "select * from Impl where Length = 3",
    ):
        assert_view_queries_agree(db, text)
    result = run_query(db, "select * from Impl where Length = 99")
    assert result.plan.access_path == "view"
    assert len(result.rows) == 1


def test_deleted_row_recycling_keeps_view_consistent():
    """Deleting objects releases store rows to a free list; new objects
    reuse them.  View columns are aligned with store rows, so a recycled
    row's cells must be overwritten for the new occupant."""
    db, interfaces, impls = _iface_world()
    assert_view_queries_agree(db, "select * from Impl where Length >= 0")
    victims = impls[3:9]
    rows = {o._row for o in victims}
    for obj in victims:
        obj.delete()
    fresh = [
        db.create_object(
            db.catalog.type("Impl"), transmitter=interfaces[i + 10]
        )
        for i in range(6)
    ]
    assert {o._row for o in fresh} & rows  # rows actually recycled
    for text in (
        "select * from Impl where Length >= 0",
        "select * from Impl where Length = 13",
        "select * from Impl where Length < 5",
    ):
        assert_view_queries_agree(db, text)
    view = db.views.view_for(db.catalog.type("Impl"))
    assert len(view) == len([o for o in impls if not o.deleted]) + len(fresh)


def test_view_columns_stay_aligned_with_store_rows():
    """Cells live at ``obj._row``: deletion clears them in place, and a
    store-recycled row is overwritten for its new occupant — the columns
    never grow while the store reuses rows."""
    db, interfaces, impls = _iface_world()
    run_query(db, "select * from Impl where Length > 0")
    view = db.views.view_for(db.catalog.type("Impl"))
    rows_before = len(view.columns[0])
    freed = [obj._row for obj in impls[:5]]
    for obj in impls[:5]:
        obj.delete()
    for row in freed:
        assert all(column[row] is None for column in view.columns)
    recreated = [
        db.create_object(db.catalog.type("Impl"), transmitter=interfaces[i])
        for i in range(5)
    ]
    assert {o._row for o in recreated} == set(freed)  # store reused rows
    for obj in recreated:
        assert view.row_of[obj.surrogate] == obj._row
        assert view.columns[view.col_of["Length"]][obj._row] is not None
    assert len(view.columns[0]) == rows_before  # no growth: rows reused
    assert_view_queries_agree(db, "select * from Impl where Length > 0")


# ---------------------------------------------------------------------------
# deterministic surfaces
# ---------------------------------------------------------------------------


def test_explain_shows_view_access_path():
    db, _, _ = _iface_world()
    result = run_query(db, "select * from Impl where Length > 10", explain=True)
    text = result.explain()
    assert result.plan.access_path == "view"
    assert "access:  view" in text
    assert any("view: Impl columns [Length]" in note for note in result.plan.notes)


def test_view_disabled_stays_on_live_path():
    db, _, _ = _iface_world()
    result = run_query(db, "select * from Impl where Length > 10", views=False)
    assert result.plan.access_path == "full-scan"
    assert db.views.stats["query.view.hits"] == 0


def test_index_path_takes_precedence_over_view():
    db, _, _ = _iface_world()
    db.indexes.auto = True
    db.indexes.min_index_source = 0
    result = run_query(db, "select * from Impl where Length = 7")
    assert result.plan.access_path == "index-eq"


def test_metrics_snapshot_exposes_view_counters():
    from repro.obs.report import snapshot

    db, interfaces, _ = _iface_world()
    db.enable_observability()
    run_query(db, "select * from Impl where Length > 5")
    interfaces[0].set_attribute("Length", 50)
    gauges = snapshot(db, include_events=False)["gauges"]
    for key in ("query.view.hits", "query.view.misses",
                "query.view.refreshes", "query.view.staleness",
                "query.view.views", "query.view.rows", "query.view.tainted"):
        assert key in gauges
    assert gauges["query.view.hits"] >= 1
    assert gauges["query.view.refreshes"] >= 1
    assert gauges["query.view.rows"] >= 20


def test_schema_change_rebuilds_view_and_counts_staleness():
    db, _, _ = _iface_world()
    run_query(db, "select * from Impl where Length > 5")
    assert db.views.stats["query.view.staleness"] == 0
    ObjectType(_uname("Unrelated"))  # any type definition bumps the epoch
    result = run_query(db, "select * from Impl where Length > 5")
    assert result.plan.access_path == "view"
    assert db.views.stats["query.view.staleness"] == 1
    view = db.views.view_for(db.catalog.type("Impl"))
    assert view.staleness == 1


def test_tainted_rows_refuse_view_scans():
    db, _, impls = _iface_world()
    view = db.views.view_for(db.catalog.type("Impl"))
    assert view is not None
    view.tainted.add(impls[0].surrogate)  # simulate an extraction failure
    result = run_query(db, "select * from Impl where Length > 5")
    assert result.plan.access_path == "full-scan"
    assert any("tainted" in note for note in result.plan.notes)
    assert db.views.stats["query.view.misses"] >= 1
    assert_view_queries_agree(db, "select * from Impl where Length > 5")


def test_small_extents_stay_live():
    db = Database(_uname("small"))
    db.indexes.auto = False
    iface = db.catalog.define_object_type("IfaceS", attributes={"L": ANY})
    all_of = db.catalog.define_inheritance_type("AllOfIfaceS", iface, ["L"])
    impl = db.catalog.define_object_type("ImplS")
    impl.declare_inheritor_in(all_of)
    for i in range(5):  # below the default min_view_source of 16
        t = db.create_object(iface, L=i)
        db.create_object(impl, transmitter=t)
    result = run_query(db, "select * from ImplS where L = 3")
    assert result.plan.access_path == "full-scan"
    assert db.views.stats["query.view.hits"] == 0


def test_container_predicates_never_route_to_views():
    db = Database(_uname("cont"))
    db.indexes.auto = False
    db.views.min_view_source = 0
    pin = db.catalog.define_object_type("PinC", attributes={"InOut": ANY})
    iface = db.catalog.define_object_type(
        "IfaceC", attributes={"Length": ANY}, subclasses={"Pins": pin}
    )
    all_of = db.catalog.define_inheritance_type(
        "AllOfIfaceC", iface, ["Length", "Pins"]
    )
    impl = db.catalog.define_object_type("ImplC")
    impl.declare_inheritor_in(all_of)
    for i in range(20):
        t = db.create_object(iface, Length=i)
        t.subclass("Pins").create(InOut="IN")
        db.create_object(impl, transmitter=t)
    # Pins is a container member: not a view column, stays live.
    result = run_query(db, "select * from ImplC where count(Pins) = 1")
    assert result.plan.access_path == "full-scan"
    # Length is attribute-valued: routed.
    result = run_query(db, "select * from ImplC where Length > 10")
    assert result.plan.access_path == "view"
    assert_view_queries_agree(db, "select * from ImplC where count(Pins) = 1")


def test_rep505_advises_on_container_members():
    from repro.analysis import analyze

    src = """
    obj-type PinType = attributes: InOut: string; end PinType;
    obj-type GateInterface = attributes: Length: integer;
      types-of-subclasses: Pins: PinType; end GateInterface;
    inher-rel-type AllOf_GateInterface =
      transmitter: object-of-type GateInterface;
      inheritor: object; inheriting: Length, Pins; end AllOf_GateInterface;
    obj-type GateImplementation = inheritor-in: AllOf_GateInterface;
      attributes: Name: string; end GateImplementation;
    """
    findings = [d for d in analyze(src) if d.code == "REP505"]
    assert len(findings) == 1
    assert findings[0].subject == "GateImplementation"
    assert "Pins" in findings[0].message
    # The attribute-only clean twin stays quiet.
    clean = src.replace("Length, Pins;", "Length;")
    assert not [d for d in analyze(clean) if d.code == "REP505"]


def test_explain_value_reports_view_freshness():
    db, interfaces, impls = _iface_world()
    run_query(db, "select * from Impl where Length > 5")  # builds the view
    prov = db.explain_value(impls[7], "Length")
    assert prov.views == ["type:Impl.Length (fresh)"]
    assert "materialized in: type:Impl.Length (fresh)" in prov.render()
    assert prov.as_dict()["views"] == ["type:Impl.Length (fresh)"]
    # Forge a stale cell: raw column write, no event (the documented gap).
    view = db.views.view_for(db.catalog.type("Impl"))
    view.columns[view.col_of["Length"]][view.row_of[impls[7].surrogate]] = -1
    prov = db.explain_value(impls[7], "Length")
    assert prov.views == ["type:Impl.Length (stale)"]


def test_verify_harness_checks_view_parity():
    from repro.analysis import verify_against_runtime

    src = """
    obj-type Iface = attributes: Length: integer; end Iface;
    inher-rel-type AllOf_Iface = transmitter: object-of-type Iface;
      inheritor: object; inheriting: Length; end AllOf_Iface;
    obj-type Impl = inheritor-in: AllOf_Iface;
      attributes: Name: string; end Impl;
    """
    report = verify_against_runtime(src, strict=True)
    assert report.ok, report.render()
    assert not report.failures


# ---------------------------------------------------------------------------
# parse-cache staleness regression (satellite 1)
# ---------------------------------------------------------------------------


def test_parse_cache_does_not_survive_schema_changes():
    """Identical query text before and after a DDL change must not share
    AST nodes: node identity keys every compiled cache, so a stale parse
    would serve a program compiled against the old schema."""
    db = Database(_uname("epoch"))
    db.indexes.auto = False
    db.views.min_view_source = 0
    base = db.catalog.define_object_type("BaseE", attributes={"alpha": ANY})
    sub = db.catalog.define_object_type("SubE", attributes={"Name": ANY})
    db.create_class("ThingsE", sub)
    transmitters = [db.create_object(base, alpha=i) for i in range(20)]
    subs = [
        db.create_object(sub, class_name="ThingsE", Name=f"s{i}")
        for i in range(20)
    ]
    text = "select * from ThingsE where alpha = 5"
    # Before any inheritance is declared, 'alpha' is an unknown name on
    # SubE: the label convention resolves it to the string "alpha".
    before = run_query(db, text)
    assert len(before.rows) == 0
    # Redefine: declare the inheritance, bind, and re-run the same text.
    rel = db.catalog.define_inheritance_type("AllOfBaseE", base, ["alpha"])
    sub.declare_inheritor_in(rel)
    for obj, transmitter in zip(subs, transmitters):
        db.bind(obj, transmitter, rel)
    after = run_query(db, text)
    assert len(after.rows) == 1
    assert after.objects[0].get_member("alpha") == 5
    assert_view_queries_agree(db, text)


def test_parse_cache_shares_nodes_within_an_epoch():
    from repro.query import parse_query

    first = parse_query("select * from X where alpha = 5")
    second = parse_query("select * from X where alpha = 5")
    assert first is not second  # specs are fresh copies
    assert first.where is second.where  # clause ASTs are shared
    ObjectType(_uname("EpochBump"))
    third = parse_query("select * from X where alpha = 5")
    assert third.where is not first.where
