"""Relationship types.

§3: *"Objects can be related to each other.  A relationship is represented
by a relationship object.  A relationship object belongs to a specific
relationship type which can define several attributes and integrity
constraints for the relationship objects.  The types of the objects to be
related can be specified, but they need not be."*

A relationship type declares named participant roles (the ``relates:``
clause).  A role may be

* typed — ``Pin1: object-of-type PinType``;
* untyped — ``<name>: object``;
* set-valued — ``Bores: set-of object-of-type BoreType`` (§5 ScrewingType).

Relationship types may also declare attributes, local subclasses (which can
themselves be ``inheritor-in`` an inheritance relationship — ScrewingType's
``Bolt``/``Nut``) and constraints, exactly like object types; the shared
machinery lives in :class:`~repro.core.objtype.TypeBase`.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple, Union

from ..errors import SchemaError
from .attributes import RESERVED_MEMBER_NAMES
from .objtype import ObjectType, TypeBase

__all__ = ["ParticipantSpec", "RelationshipType"]


class ParticipantSpec:
    """One role of a relationship type's ``relates:`` clause."""

    __slots__ = ("role", "object_type", "many")

    def __init__(
        self,
        role: str,
        object_type: Optional[ObjectType] = None,
        many: bool = False,
    ):
        if not role.isidentifier():
            raise SchemaError(f"participant role {role!r} is not a valid identifier")
        if role in RESERVED_MEMBER_NAMES:
            raise SchemaError(f"participant role {role!r} is reserved")
        self.role = role
        self.object_type = object_type
        self.many = many

    def describe(self) -> str:
        base = self.object_type.name if self.object_type is not None else "object"
        return f"set-of object-of-type {base}" if self.many else base

    def __repr__(self) -> str:
        return f"ParticipantSpec({self.role!r}: {self.describe()})"


ParticipantLike = Union[ParticipantSpec, ObjectType, None, Tuple[Optional[ObjectType], bool]]


def _normalise_participants(
    relates: Mapping[str, ParticipantLike],
) -> Dict[str, ParticipantSpec]:
    if not relates:
        raise SchemaError("a relationship type must relate at least one role")
    specs: Dict[str, ParticipantSpec] = {}
    for role, value in relates.items():
        if isinstance(value, ParticipantSpec):
            if value.role != role:
                raise SchemaError(
                    f"participant spec role {value.role!r} does not match key {role!r}"
                )
            specs[role] = value
        elif isinstance(value, ObjectType) or value is None:
            specs[role] = ParticipantSpec(role, value)
        elif isinstance(value, tuple) and len(value) == 2:
            specs[role] = ParticipantSpec(role, value[0], many=bool(value[1]))
        else:
            raise SchemaError(
                f"participant {role!r} must map to an ObjectType, None, "
                f"ParticipantSpec or (type, many) pair"
            )
    return specs


class RelationshipType(TypeBase):
    """A relationship type (§3).

    Parameters
    ----------
    name:
        Type name, unique within a catalog.
    relates:
        Mapping of role name to participant declaration: an
        :class:`~repro.core.objtype.ObjectType` (typed role), ``None``
        (untyped ``object`` role), a ``(type, many)`` pair for set-valued
        roles, or a full :class:`ParticipantSpec`.
    attributes / subclasses / subrels / constraints:
        As for object types — relationship objects are full objects.
    """

    def __init__(
        self,
        name: str,
        relates: Mapping[str, ParticipantLike],
        attributes=None,
        subclasses=None,
        subrels=None,
        constraints=None,
        doc: str = "",
    ):
        super().__init__(
            name,
            attributes=attributes,
            subclasses=subclasses,
            subrels=subrels,
            constraints=constraints,
            doc=doc,
        )
        self.participants: Dict[str, ParticipantSpec] = _normalise_participants(relates)
        clashes = set(self.participants) & (
            set(self.attributes) | set(self.subclass_specs) | set(self.subrel_specs)
        )
        if clashes:
            raise SchemaError(
                f"relationship type {name!r}: roles {sorted(clashes)} clash with members"
            )

    def participant(self, role: str) -> ParticipantSpec:
        """The spec for ``role``; raises SchemaError when undeclared."""
        try:
            return self.participants[role]
        except KeyError:
            raise SchemaError(
                f"relationship type {self.name!r} has no role {role!r}"
            ) from None

    def validate_participants(self, assignment: Mapping[str, object]) -> Dict[str, object]:
        """Check and normalise a role → object(s) assignment.

        Every declared role must be present; typed roles check conformance
        of each object's type; set-valued roles normalise to tuples.
        """
        missing = set(self.participants) - set(assignment)
        if missing:
            raise SchemaError(
                f"relationship {self.name!r}: missing participants {sorted(missing)}"
            )
        unknown = set(assignment) - set(self.participants)
        if unknown:
            raise SchemaError(
                f"relationship {self.name!r}: unknown roles {sorted(unknown)}"
            )
        normalised: Dict[str, object] = {}
        for role, spec in self.participants.items():
            value = assignment[role]
            if spec.many:
                if not isinstance(value, (list, tuple, set, frozenset)):
                    raise SchemaError(
                        f"role {role!r} of {self.name!r} is set-valued; "
                        f"got a single object"
                    )
                members = tuple(value)
                for member in members:
                    self._check_member(role, spec, member)
                normalised[role] = members
            else:
                if isinstance(value, (list, tuple, set, frozenset)):
                    raise SchemaError(
                        f"role {role!r} of {self.name!r} is single-valued; "
                        f"got a collection"
                    )
                self._check_member(role, spec, value)
                normalised[role] = value
        return normalised

    @staticmethod
    def _check_member(role: str, spec: ParticipantSpec, candidate: object) -> None:
        candidate_type = getattr(candidate, "object_type", None)
        if candidate_type is None:
            raise SchemaError(
                f"participant for role {role!r} must be a database object, "
                f"got {candidate!r}"
            )
        if spec.object_type is not None and not candidate_type.conforms_to(spec.object_type):
            raise SchemaError(
                f"participant for role {role!r} must conform to type "
                f"{spec.object_type.name!r}; got {candidate_type.name!r}"
            )
