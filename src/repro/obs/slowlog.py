"""The slow-operation log (``repro slowlog``).

Latency problems in this engine are *emergent* — a query is slow because
the planner fell back to a scan, an update is slow because its propagation
cone is wide, an expansion is slow because the hierarchy ballooned — so a
slow-op record is only useful if it carries the **diagnosis**, not just
the duration.  The :class:`SlowLog` captures, per operation kind:

* ``query`` — the EXPLAIN plan (access path, estimated vs actual rows);
* ``propagation`` — the cone summary (attribute, fan-out, max depth);
* ``expansion`` — the materialised-object count and depth limit;
* ``txn`` — commit/abort with the undo-log length.

Operations exceeding the kind's latency budget are kept in a bounded ring
**and** appended to the PR-4 audit stream (``slowlog.<kind>`` records,
causally linked to the operation that overran), so ``repro audit`` and a
JSONL sink see them interleaved with the mutations they explain.

Cost discipline: the engine's call sites clock an operation **only when a
slow log is attached** (``obs is not None and obs.slowlog is not None`` —
the same one-load-one-branch guard as the rest of the observability
layer), so the dark path stays free and the enabled-but-quiet path costs
two ``perf_counter`` reads per operation (measured in E18).
"""

from __future__ import annotations

import time
from collections import deque
from typing import Any, Deque, Dict, List, NamedTuple, Optional

from ..engine.events import next_seq

__all__ = ["SLOWLOG_SCHEMA_VERSION", "DEFAULT_BUDGETS", "SlowOp", "SlowLog"]

SLOWLOG_SCHEMA_VERSION = "repro.slowlog/1"

#: Default latency budgets in seconds, per operation kind.  Deliberately
#: generous — the slow log is for outliers, not a second metrics registry.
DEFAULT_BUDGETS: Dict[str, float] = {
    "query": 0.050,
    "propagation": 0.050,
    "expansion": 0.100,
    "txn": 0.100,
}


class SlowOp(NamedTuple):
    """One recorded over-budget operation.

    ``seq`` places the record on the database's global event/audit
    sequence (the same counter ``repro audit`` numbers records with), so
    ``repro slowlog --since SEQ`` can tail incrementally and a slow op
    can be correlated with the audit records around it.
    """

    ts: float
    kind: str
    duration: float
    budget: float
    subject: Any
    detail: Dict[str, Any]
    seq: Optional[int] = None

    def as_dict(self) -> Dict[str, Any]:
        return {
            "seq": self.seq,
            "ts": self.ts,
            "kind": self.kind,
            "duration": self.duration,
            "budget": self.budget,
            "subject": repr(self.subject) if self.subject is not None else None,
            "detail": {
                key: value
                if isinstance(value, (bool, int, float, str, type(None)))
                else repr(value)
                for key, value in self.detail.items()
            },
        }

    def __repr__(self) -> str:
        return (
            f"<SlowOp {self.kind} {self.duration * 1e3:.2f}ms "
            f"(budget {self.budget * 1e3:.1f}ms)>"
        )


class SlowLog:
    """Bounded ring of over-budget operations, with per-kind budgets.

    ``budgets`` overrides :data:`DEFAULT_BUDGETS` per kind; a kind whose
    budget is ``None`` is never recorded.  When ``audit`` is attached,
    every kept record is mirrored onto the audit stream as
    ``slowlog.<kind>`` with the diagnosis in its detail.
    """

    def __init__(
        self,
        budgets: Optional[Dict[str, float]] = None,
        ring_size: int = 256,
        audit=None,
        metrics=None,
    ):
        self.budgets = dict(DEFAULT_BUDGETS)
        if budgets:
            self.budgets.update(budgets)
        self.ring: Deque[SlowOp] = deque(maxlen=ring_size)
        self.audit = audit
        self.metrics = metrics
        #: Total over-budget operations ever seen (the ring is bounded).
        self.recorded = 0

    def budget(self, kind: str) -> Optional[float]:
        """The budget for ``kind`` in seconds, or None (= never record)."""
        return self.budgets.get(kind)

    def exceeded(self, kind: str, duration: float) -> bool:
        """Whether ``duration`` overran ``kind``'s budget.

        Call sites use this one-compare check before building expensive
        diagnosis detail (an EXPLAIN rendering, a cone summary) for
        :meth:`note`, so within-budget operations never pay for it.
        """
        budget = self.budgets.get(kind)
        return budget is not None and duration >= budget

    def note(
        self, kind: str, duration: float, subject: Any = None, **detail: Any
    ) -> Optional[SlowOp]:
        """Record the operation iff it exceeded its kind's budget.

        Returns the :class:`SlowOp` kept, or None when within budget (the
        overwhelmingly common case — one float compare).
        """
        budget = self.budgets.get(kind)
        if budget is None or duration < budget:
            return None
        record = None
        if self.audit is not None:
            record = self.audit.record(
                f"slowlog.{kind}",
                subject,
                duration=duration,
                budget=budget,
                **detail,
            )
        # Share the audit record's global sequence number; without an
        # audit log, draw from the same counter so --since still works.
        seq = record.seq if record is not None else next_seq()
        op = SlowOp(time.time(), kind, duration, budget, subject, detail, seq)
        self.ring.append(op)
        self.recorded += 1
        if self.metrics is not None:
            self.metrics.counter(f"slowlog.{kind}").inc()
        return op

    # -- inspection --------------------------------------------------------------

    def operations(
        self, kind: Optional[str] = None, since: Optional[int] = None
    ) -> List[SlowOp]:
        """Buffered slow operations, oldest first.

        ``kind`` keeps one operation kind; ``since`` keeps records at or
        after that global sequence number (the selectors behind
        ``repro slowlog --kind/--since``, mirroring ``repro audit``).
        """
        ops = list(self.ring)
        if kind is not None:
            ops = [op for op in ops if op.kind == kind]
        if since is not None:
            ops = [op for op in ops if op.seq is not None and op.seq >= since]
        return ops

    def snapshot(
        self, kind: Optional[str] = None, since: Optional[int] = None
    ) -> Dict[str, Any]:
        """The ``repro.slowlog/1`` JSON document (optionally filtered)."""
        return {
            "schema": SLOWLOG_SCHEMA_VERSION,
            "budgets": dict(self.budgets),
            "recorded": self.recorded,
            "operations": [
                op.as_dict() for op in self.operations(kind, since)
            ],
        }

    def render(
        self, kind: Optional[str] = None, since: Optional[int] = None
    ) -> str:
        """An aligned text table of the buffered slow operations."""
        ops = self.operations(kind, since)
        if not ops:
            if kind is not None or since is not None:
                return "slow log: no operations match the filters"
            return "slow log: empty (nothing exceeded its budget)"
        lines = [
            f"slow log: {self.recorded} over-budget operation(s) "
            f"({len(self.ring)} buffered, {len(ops)} shown)"
        ]
        for op in ops:
            seq = f"#{op.seq} " if op.seq is not None else ""
            lines.append(
                f"  {seq}[{op.kind}] {op.duration * 1e3:.2f}ms "
                f"(budget {op.budget * 1e3:.1f}ms) {op.subject!r}"
            )
            for key, value in op.detail.items():
                rendered = str(value)
                for extra, line in enumerate(rendered.split("\n")):
                    prefix = f"    {key}: " if extra == 0 else "      "
                    lines.append(prefix + line)
        return "\n".join(lines)

    def clear(self) -> None:
        self.ring.clear()

    def __len__(self) -> int:
        return len(self.ring)

    def __repr__(self) -> str:
        return f"<SlowLog recorded={self.recorded} buffered={len(self.ring)}>"
