"""Incrementally-maintained extent and attribute-value indexes.

Every query used to be a full scan: the executor walked the whole class
extent (or, worse, ``Database.objects_of_type`` walked *every live object
in the database*) and evaluated the ``where`` expression per object.  The
paper's workloads — interface lookups, component selection over gate and
steel libraries (§4.2, §6) — are selective-read heavy, so this module
gives the read path sub-linear access paths:

* **Per-type extent index** — the :class:`IndexManager` mirrors the
  database's object registry into per-concrete-type buckets (adoption
  order preserved), so ``objects_of_type`` is O(result), not O(database).
  Subtype closures (``conforms_to`` is reachability over ``inheritor-in``
  declarations) are cached and validated against the schema epoch plus a
  type-population version.

* **Secondary value indexes** (:class:`ValueIndex`) — built lazily by the
  planner over one *source* (a class extent or a type) and one attribute:
  a hash index (value → objects) for equality and a sorted key array for
  range predicates.  Values are extracted through ``get_member``, i.e.
  with full value-inheritance semantics, so **inherited** members are
  indexable; the paper's ``select … from Implementations where Length …``
  resolves through transmitter chains and still hits the index.

Maintenance is incremental and event-driven:

* extent membership — synchronous hooks from :class:`~repro.engine.storage.Extent`;
* object lifecycle — synchronous hooks from ``Database._adopt`` /
  ``Database._forget_object``;
* value changes — bus subscriptions to ``attribute_updated`` and
  ``attribute_restored`` (the latter emitted by transaction abort,
  version revert-and-reject and merge apply, which write ``_attrs``
  directly), re-extracting the subject *and its transitive inheritors*
  (a transmitter update changes the indexed value of everything bound
  below it);
* topology changes — ``inheritor_bound`` / ``inheritor_unbound`` refresh
  the subject's whole downstream subtree in every value index.

On top of the event-driven updates, every index entry records the epoch
triple of PR 2's resolution engine — the owner's *binding epoch*, the
resolved *holder* and the holder's *mutation epoch* — and candidates are
revalidated with integer compares at lookup time (``index.stale_repairs``
counts the self-heals).  Indexes record the *schema epoch* they were
built under and are dropped and rebuilt lazily after any type definition
or ``declare_inheritor_in`` (the drop-on-schema-change lifecycle).

The planner (:mod:`repro.query.planner`) only ever treats index lookups
as *candidate* sets: the executor re-applies the full ``where`` to every
candidate, so an index can only cause false positives (filtered out
again), never wrong rows — the correctness obligation on this module is
**no false negatives**, which the hypothesis suite in
``tests/test_indexes.py`` checks against the full-scan oracle.
"""

from __future__ import annotations

import itertools
from bisect import bisect_left, bisect_right, insort
from typing import Any, Dict, List, Optional, Tuple

from ..core import resolution as _resolution
from ..errors import UnknownAttributeError

__all__ = ["IndexManager", "ValueIndex"]

#: Race-sanitizer guard (:mod:`repro.obs.race`): ``None`` when dark, the
#: active sanitizer while enabled.
TSAN: Any = None

#: Value-kind tags used to guard range sargability (mixed-kind comparisons
#: raise in the expression language, so a range scan is only offered when
#: the whole index is comparable with the literal).
KIND_NUM = 0
KIND_STR = 1
KIND_OTHER = 2


def kind_of(value: Any) -> int:
    """Classify a value for range-comparability purposes."""
    if isinstance(value, bool):
        return KIND_NUM
    if isinstance(value, (int, float)):
        return KIND_OTHER if value != value else KIND_NUM  # NaN is OTHER
    if isinstance(value, str):
        return KIND_STR
    return KIND_OTHER


def extract_value(obj, attr: str) -> Any:
    """The value the expression evaluator would see for a bare ``attr``.

    Mirrors :meth:`repro.expr.context.EvalContext.lookup` +
    :meth:`repro.expr.ast.Name.evaluate` with the default
    ``unresolved_as_literal=True``: unresolved names evaluate to their own
    spelling (the paper's unquoted enum-label convention).
    """
    try:
        return obj.get_member(attr)
    except (KeyError, UnknownAttributeError):
        return attr


class _Entry:
    """One indexed object: its extracted value plus the epoch snapshot
    (owner binding epoch, resolved holder, holder mutation epoch) that
    lets lookups revalidate with integer compares."""

    __slots__ = ("obj", "value", "hashable", "rank", "binding_epoch",
                 "holder", "holder_mutation")

    def __init__(self, obj, value, hashable, rank, binding_epoch, holder,
                 holder_mutation):
        self.obj = obj
        self.value = value
        self.hashable = hashable
        self.rank = rank
        self.binding_epoch = binding_epoch
        self.holder = holder
        self.holder_mutation = holder_mutation


class ValueIndex:
    """A secondary index over one attribute of one source.

    ``source_kind`` is ``"class"`` (a named extent) or ``"type"`` (all
    live conforming objects).  Hash buckets serve equality; a sorted
    ``(rank, surrogate)`` array serves ranges.  Unhashable values (lists
    from subclass containers, etc.) live in an always-included pool, so
    they can never be missed — the residual filter decides.
    """

    __slots__ = ("manager", "source_kind", "source_name", "source_type",
                 "attr", "schema_epoch", "_entries", "_buckets",
                 "_unhashable", "_sorted", "_kind_counts")

    def __init__(self, manager: "IndexManager", source_kind: str,
                 source_name: str, source_type, attr: str):
        self.manager = manager
        self.source_kind = source_kind
        self.source_name = source_name
        self.source_type = source_type
        self.attr = attr
        self.schema_epoch = _resolution.schema_epoch()
        self._entries: Dict[Any, _Entry] = {}
        self._buckets: Dict[Any, Dict[Any, Any]] = {}
        self._unhashable: Dict[Any, Any] = {}
        #: Sorted (rank, surrogate) pairs for comparable values.  rank is
        #: (KIND, value); surrogate breaks ties, keeping every element
        #: totally ordered so bisect insert/remove are exact.
        self._sorted: List[Tuple[Tuple[int, Any], Any]] = []
        self._kind_counts = [0, 0, 0]

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return (f"<ValueIndex {self.source_kind}:{self.source_name}"
                f".{self.attr} n={len(self._entries)}>")

    # -- membership maintenance ------------------------------------------------

    def build(self, members) -> None:
        for obj in members:
            if not obj._deleted:
                self.insert(obj)

    def insert(self, obj) -> None:
        san = TSAN
        if san is not None:
            san.write(("index", id(self)), label=f"index:{self.source_name}.{self.attr}")
        surrogate = obj.surrogate
        if surrogate in self._entries:
            self._remove_entry(surrogate)
        value = extract_value(obj, self.attr)
        kind = kind_of(value)
        rank = None
        hashable = True
        try:
            bucket = self._buckets.get(value)
            if bucket is None:
                bucket = self._buckets[value] = {}
            bucket[surrogate] = obj
        except TypeError:
            hashable = False
            self._unhashable[surrogate] = obj
            kind = KIND_OTHER
        if kind != KIND_OTHER:
            rank = (kind, value)
            insort(self._sorted, (rank, surrogate))
        self._kind_counts[kind] += 1
        # Epoch snapshot: get_member memoised the holder if the name is a
        # plan entry and the chain consists of plain objects; otherwise
        # the object itself is the authority.
        memo = obj._member_memo.get(self.attr)
        if (memo is not None and memo[0] == _resolution.schema_epoch()
                and memo[1] == obj._binding_epoch):
            holder = memo[2]
        else:
            holder = obj
        self._entries[surrogate] = _Entry(
            obj, value, hashable, rank, obj._binding_epoch, holder,
            holder._mutation_epoch,
        )

    def remove(self, obj) -> None:
        self._remove_entry(obj.surrogate)

    def _remove_entry(self, surrogate) -> None:
        san = TSAN
        if san is not None:
            san.write(("index", id(self)), label=f"index:{self.source_name}.{self.attr}")
        entry = self._entries.pop(surrogate, None)
        if entry is None:
            return
        if entry.hashable:
            bucket = self._buckets.get(entry.value)
            if bucket is not None:
                bucket.pop(surrogate, None)
                if not bucket:
                    del self._buckets[entry.value]
            kind = kind_of(entry.value)
        else:
            self._unhashable.pop(surrogate, None)
            kind = KIND_OTHER
        if entry.rank is not None:
            position = bisect_left(self._sorted, (entry.rank, surrogate))
            if (position < len(self._sorted)
                    and self._sorted[position] == (entry.rank, surrogate)):
                del self._sorted[position]
        self._kind_counts[kind] -= 1

    def refresh_if_tracked(self, obj) -> bool:
        """Re-extract one object's value if this index tracks it."""
        if obj.surrogate not in self._entries:
            return False
        if obj._deleted:
            self._remove_entry(obj.surrogate)
        else:
            self.insert(obj)
        return True

    # -- lookups ---------------------------------------------------------------

    def estimate_eq(self, key) -> int:
        try:
            bucket = self._buckets.get(key)
        except TypeError:
            bucket = None
        return (len(bucket) if bucket else 0) + len(self._unhashable)

    def lookup_eq(self, key) -> List[Any]:
        try:
            bucket = self._buckets.get(key)
        except TypeError:
            bucket = None
        candidates = list(bucket.values()) if bucket else []
        if self._unhashable:
            candidates.extend(self._unhashable.values())
        return candidates

    def range_supported(self, key) -> bool:
        """A range scan is only exact when every indexed value compares
        with the literal — otherwise the full scan's comparison error must
        be allowed to happen, so the planner falls back."""
        kind = kind_of(key)
        counts = self._kind_counts
        if counts[KIND_OTHER]:
            return False
        if kind == KIND_NUM:
            return counts[KIND_STR] == 0
        if kind == KIND_STR:
            return counts[KIND_NUM] == 0
        return False

    def _range_bounds(self, op: str, key) -> Tuple[int, int]:
        rank = (kind_of(key), key)
        ranks = self._sorted
        first = lambda element: element[0]  # noqa: E731 - bisect key
        if op == ">":
            return bisect_right(ranks, rank, key=first), len(ranks)
        if op == ">=":
            return bisect_left(ranks, rank, key=first), len(ranks)
        if op == "<":
            return 0, bisect_left(ranks, rank, key=first)
        return 0, bisect_right(ranks, rank, key=first)  # "<="

    def estimate_range(self, op: str, key) -> int:
        low, high = self._range_bounds(op, key)
        return high - low

    def lookup_range(self, op: str, key) -> List[Any]:
        low, high = self._range_bounds(op, key)
        entries = self._entries
        return [entries[surrogate].obj
                for _, surrogate in self._sorted[low:high]]

    def validate(self, candidates: List[Any]) -> None:
        """Self-heal: re-extract any candidate whose epoch snapshot is
        stale (two integer compares per candidate on the happy path)."""
        entries = self._entries
        repaired = 0
        for obj in candidates:
            entry = entries.get(obj.surrogate)
            if entry is None:
                continue
            if (entry.binding_epoch != obj._binding_epoch
                    or entry.holder_mutation != entry.holder._mutation_epoch):
                self.refresh_if_tracked(obj)
                repaired += 1
                self.manager._audit(
                    "index.self_heal",
                    obj,
                    attribute=self.attr,
                    index=f"{self.source_kind}:{self.source_name}.{self.attr}",
                )
        if repaired:
            self.manager._bump("index.stale_repairs", repaired)


class IndexManager:
    """Per-database index registry, maintenance hub and statistics.

    Attached as ``Database.indexes``.  The per-type extent index is always
    on (it mirrors ``_adopt``/``_forget_object`` at O(1) each); value
    indexes are built on first use by the planner once a source is at
    least ``min_index_source`` objects (set it to 0 to force indexing in
    tests), and ``auto = False`` disables planner index selection entirely
    (benchmark baseline + oracle mode).
    """

    def __init__(self, database):
        self.database = database
        self.auto = True
        self.min_index_source = 16
        self.stats: Dict[str, int] = {
            "index.hits": 0,
            "index.misses": 0,
            "index.maintenance": 0,
            "index.built": 0,
            "index.dropped": 0,
            "index.stale_repairs": 0,
            "index.type_lookups": 0,
        }
        self._adoption_seq = itertools.count(1)
        self._adopt_order: Dict[Any, int] = {}
        self._by_type: Dict[Any, Dict[Any, Any]] = {}
        self._types_version = 0
        self._closures: Dict[int, Tuple[Tuple[int, int], Tuple[Any, ...]]] = {}
        self._value_indexes: Dict[Tuple[str, str, str], ValueIndex] = {}
        self._by_attr: Dict[str, List[ValueIndex]] = {}
        self._class_indexes: Dict[str, List[ValueIndex]] = {}
        self._type_indexes: List[ValueIndex] = []
        self._subscribed = False

    # -- statistics ------------------------------------------------------------

    def _bump(self, key: str, amount: int = 1) -> None:
        self.stats[key] = self.stats.get(key, 0) + amount
        obs = self.database.obs
        if obs is not None:
            obs.metrics.counter(key).inc(amount)

    def _audit(self, kind: str, subject, **detail) -> None:
        """Causal audit record for a maintenance action (no-op unless an
        audit log is attached — one attribute load and a branch)."""
        obs = self.database.obs
        if obs is not None:
            audit = obs.audit
            if audit is not None:
                audit.record(kind, subject, **detail)

    def stats_snapshot(self) -> Dict[str, int]:
        snapshot = dict(self.stats)
        snapshot["index.value_indexes"] = len(self._value_indexes)
        snapshot["index.indexed_entries"] = sum(
            len(index) for index in self._value_indexes.values()
        )
        return snapshot

    # -- object-registry hooks (synchronous, always on) ------------------------

    def object_adopted(self, obj) -> None:
        san = TSAN
        if san is not None:
            san.write(("extents", id(self)), label="extents")
        self._adopt_order[obj.surrogate] = next(self._adoption_seq)
        bucket = self._by_type.get(obj.object_type)
        if bucket is None:
            bucket = self._by_type[obj.object_type] = {}
            self._types_version += 1
        bucket[obj.surrogate] = obj
        if self._type_indexes:
            for index in self._type_indexes:
                if obj.object_type.conforms_to(index.source_type):
                    index.insert(obj)
                    self._bump("index.maintenance")

    def object_forgotten(self, obj) -> None:
        san = TSAN
        if san is not None:
            san.write(("extents", id(self)), label="extents")
        self._adopt_order.pop(obj.surrogate, None)
        bucket = self._by_type.get(obj.object_type)
        if bucket is not None:
            bucket.pop(obj.surrogate, None)
        if self._value_indexes:
            for index in self._value_indexes.values():
                if obj.surrogate in index._entries:
                    index.remove(obj)
                    self._bump("index.maintenance")

    # -- extent hooks (synchronous, from Extent.add/discard) --------------------

    def extent_member_added(self, extent, obj) -> None:
        for index in self._class_indexes.get(extent.name, ()):
            index.insert(obj)
            self._bump("index.maintenance")

    def extent_member_removed(self, extent, obj) -> None:
        for index in self._class_indexes.get(extent.name, ()):
            index.remove(obj)
            self._bump("index.maintenance")

    # -- the per-type extent index ----------------------------------------------

    def order_token(self, obj) -> int:
        """Global adoption ordinal — the scan order of ``objects()``."""
        return self._adopt_order.get(obj.surrogate, 0)

    def _closure(self, resolved) -> Tuple[Any, ...]:
        """Concrete types with buckets that conform to ``resolved``."""
        version = (_resolution.schema_epoch(), self._types_version)
        cached = self._closures.get(id(resolved))
        if cached is not None and cached[0] == version:
            return cached[1]
        types = tuple(
            concrete for concrete in self._by_type
            if concrete.conforms_to(resolved)
        )
        self._closures[id(resolved)] = (version, types)
        return types

    def objects_of_type(self, resolved, include_subtypes: bool = True) -> List[Any]:
        """All live objects of a type, in the registry's adoption order —
        O(result), serving what used to be a full-database scan."""
        self._bump("index.type_lookups")
        if not include_subtypes:
            bucket = self._by_type.get(resolved)
            return list(bucket.values()) if bucket else []
        buckets = [
            self._by_type[concrete]
            for concrete in self._closure(resolved)
            if self._by_type[concrete]
        ]
        if not buckets:
            return []
        if len(buckets) == 1:
            return list(buckets[0].values())
        merged = [obj for bucket in buckets for obj in bucket.values()]
        order = self._adopt_order
        merged.sort(key=lambda obj: order[obj.surrogate])
        return merged

    def type_population(self, resolved, include_subtypes: bool = True) -> int:
        """Size of :meth:`objects_of_type` without materialising it."""
        if not include_subtypes:
            bucket = self._by_type.get(resolved)
            return len(bucket) if bucket else 0
        return sum(
            len(self._by_type[concrete]) for concrete in self._closure(resolved)
        )

    def concrete_types_of(self, resolved) -> List[Any]:
        """Concrete types with live instances conforming to ``resolved``."""
        return [
            concrete for concrete in self._closure(resolved)
            if self._by_type[concrete]
        ]

    def type_groups(self) -> List[Tuple[Any, List[Any]]]:
        """Every live object, grouped by concrete type (adoption order
        within each group) — the batch form of the extent index, served
        in O(objects) with no per-object dispatch.  The constraint sweep
        runs its compiled scans over these groups."""
        return [
            (type_, list(bucket.values()))
            for type_, bucket in self._by_type.items()
            if bucket
        ]

    # -- value indexes ----------------------------------------------------------

    def value_index(self, source_kind: str, source_name: str,
                    attr: str) -> Optional[ValueIndex]:
        """The valid value index for (source, attr), or None."""
        index = self._value_indexes.get((source_kind, source_name, attr))
        if index is not None and index.schema_epoch != _resolution.schema_epoch():
            # Drop-on-schema-change: permeability, inheritor-in and type
            # definitions can all change what get_member resolves.
            self._drop(index)
            return None
        return index

    def ensure_value_index(self, source_kind: str, source_name: str,
                           source_type, attr: str) -> ValueIndex:
        index = self.value_index(source_kind, source_name, attr)
        if index is not None:
            return index
        index = ValueIndex(self, source_kind, source_name, source_type, attr)
        if source_kind == "class":
            extent = self.database._classes.get(source_name)
            members = extent.members() if extent is not None else []
            self._class_indexes.setdefault(source_name, []).append(index)
        else:
            members = self.objects_of_type(source_type)
            self._type_indexes.append(index)
        index.build(members)
        self._value_indexes[(source_kind, source_name, attr)] = index
        self._by_attr.setdefault(attr, []).append(index)
        self._bump("index.built")
        self._ensure_subscribed()
        return index

    def usable_value_index(self, source_kind: str, source_name: str,
                           source_type, attr: str,
                           source_size: int) -> Optional[ValueIndex]:
        """The value index the planner may use, building lazily.

        Below ``min_index_source`` objects a scan is cheap enough that no
        new index is built — but one that already exists is still used.
        """
        if source_size < self.min_index_source:
            return self.value_index(source_kind, source_name, attr)
        return self.ensure_value_index(source_kind, source_name, source_type, attr)

    def _drop(self, index: ValueIndex) -> None:
        self._value_indexes.pop(
            (index.source_kind, index.source_name, index.attr), None
        )
        attr_list = self._by_attr.get(index.attr)
        if attr_list and index in attr_list:
            attr_list.remove(index)
        if index.source_kind == "class":
            class_list = self._class_indexes.get(index.source_name)
            if class_list and index in class_list:
                class_list.remove(index)
        elif index in self._type_indexes:
            self._type_indexes.remove(index)
        self._bump("index.dropped")

    def drop_value_indexes(self) -> None:
        """Drop every value index (they rebuild lazily on next use)."""
        for index in list(self._value_indexes.values()):
            self._drop(index)

    # -- event-driven value maintenance -----------------------------------------

    def _ensure_subscribed(self) -> None:
        if self._subscribed:
            return
        bus = self.database.events
        bus.subscribe("attribute_updated", self._on_attribute_event)
        bus.subscribe("attribute_restored", self._on_attribute_event)
        bus.subscribe("inheritor_bound", self._on_binding_event)
        bus.subscribe("inheritor_unbound", self._on_binding_event)
        self._subscribed = True

    @staticmethod
    def _with_inheritors(obj) -> List[Any]:
        """``obj`` plus its transitive inheritors (they read through it)."""
        if not obj._links_as_transmitter:
            return [obj]
        targets: List[Any] = []
        seen = set()
        stack = [obj]
        while stack:
            node = stack.pop()
            if id(node) in seen:
                continue
            seen.add(id(node))
            targets.append(node)
            for link in node._links_as_transmitter:
                stack.append(link.inheritor)
        return targets

    def _on_attribute_event(self, event) -> None:
        indexes = self._by_attr.get(event.data.get("attribute"))
        if not indexes:
            return
        for target in self._with_inheritors(event.subject):
            for index in indexes:
                if index.refresh_if_tracked(target):
                    self._bump("index.maintenance")
                    self._audit(
                        "index.maintenance",
                        target,
                        attribute=index.attr,
                        index=f"{index.source_kind}:{index.source_name}"
                        f".{index.attr}",
                        reason=event.kind,
                    )

    def _on_binding_event(self, event) -> None:
        if not self._value_indexes:
            return
        # A topology change can re-route any inherited member below the
        # subject; refresh the subtree in every index.  Binds are rare.
        for target in self._with_inheritors(event.subject):
            for index in self._value_indexes.values():
                if index.refresh_if_tracked(target):
                    self._bump("index.maintenance")
                    self._audit(
                        "index.maintenance",
                        target,
                        attribute=index.attr,
                        index=f"{index.source_kind}:{index.source_name}"
                        f".{index.attr}",
                        reason=event.kind,
                    )
