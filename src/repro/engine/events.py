"""Update-event bus.

The paper relies on change notification twice: §2/§4.1 (the inheritance
relationship's attributes inform users about transmitter changes, together
with "trigger mechanisms") and §6 (conflict identification through explicit
relationships).  The event bus is the substrate both the consistency
subsystem (:mod:`repro.consistency`) and the lock manager build on.

Event kinds emitted by the core layer:

========================  =====================================================
kind                      data
========================  =====================================================
``attribute_updated``     ``attribute``, ``old``, ``new``
``attribute_restored``    ``attribute`` (direct ``_attrs`` restore: txn
                          abort, version revert-and-reject, merge apply)
``object_deleted``        —
``subobject_added``       ``subclass``, ``member``
``subobject_removed``     ``subclass``, ``member``
``relationship_created``  ``subrel``, ``relationship``
``relationship_removed``  ``subrel``, ``relationship``
``inheritor_bound``       ``rel_type``, ``transmitter``, ``link``
``inheritor_unbound``     ``rel_type``, ``transmitter``
``object_created``        ``class_name`` (emitted by the database facade)
========================  =====================================================

Every event carries ``subject`` — the object it happened to.

Causal stamping
---------------

Every event is stamped with a **process-global** monotonic sequence number
(``seq``) so histories and ring buffers from different databases merge into
one deterministic order, plus a causal context:

* ``cause`` — the ``seq`` of the event (or audit operation) whose handler
  emitted this one, ``None`` for root events;
* ``trace`` — the ``seq`` of the root of the causal chain (a root event's
  ``trace`` is its own ``seq``).

The bus maintains a cause stack: while an event's handlers run, its
``(seq, trace)`` is on top, so anything a handler emits — trigger
consequences, consistency adaptations, index maintenance — is linked to
its parent automatically.  The provenance layer (:mod:`repro.obs.provenance`)
reconstructs per-mutation propagation cones from exactly this.

``ts`` (``time.time()``) is stamped when anyone can observe the event —
history recording on, or at least one handler subscribed.  A quiet bus
skips the clock read so the unobserved emit path stays free of syscalls.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from time import time as _time
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = ["Event", "EventBus", "Subscription", "next_seq"]

#: Process-global event sequence.  Shared by every bus (and by the audit
#: log's derived records) so any two stamped records are totally ordered.
_GLOBAL_SEQ = itertools.count(1)

#: Draw the next global sequence number (used by the provenance layer for
#: derived audit records that are not bus events).
next_seq = _GLOBAL_SEQ.__next__


@dataclass(frozen=True)
class Event:
    """One change notification."""

    kind: str
    subject: Any
    data: Dict[str, Any] = field(default_factory=dict)
    seq: int = 0
    ts: float = 0.0
    cause: Optional[int] = None
    trace: int = 0

    def __getattr__(self, name: str) -> Any:
        # Dunder lookups (``__deepcopy__``, ``__getstate__``, …) come from
        # copy/pickle/inspect machinery probing for optional protocols;
        # answering them out of ``data`` would corrupt those protocols, so
        # refuse immediately without touching the payload.
        if name.startswith("__") and name.endswith("__"):
            raise AttributeError(name)
        try:
            return self.data[name]
        except KeyError:
            raise AttributeError(name) from None


Handler = Callable[[Event], None]


@dataclass(frozen=True)
class Subscription:
    """Token returned by :meth:`EventBus.subscribe`; pass to unsubscribe."""

    kind: str
    token: int


class EventBus:
    """Synchronous publish/subscribe hub.

    Handlers run inline in emission order; a handler registered for the
    wildcard kind ``"*"`` receives every event.  Handler exceptions
    propagate to the mutating call — consistency hooks are part of the
    update, exactly the semantics triggers need.
    """

    WILDCARD = "*"

    def __init__(self, record: bool = False, history_limit: int = 10_000):
        self._handlers: Dict[str, Dict[int, Handler]] = {}
        self._tokens = itertools.count(1)
        #: The causal-context stack: ``(seq, trace)`` of the event (or audit
        #: operation) whose handlers are currently running, innermost last.
        self._causes: List[Tuple[int, int]] = []
        self.record = record
        self.history_limit = history_limit
        self.history: List[Event] = []

    def subscribe(self, kind: str, handler: Handler) -> Subscription:
        """Register ``handler`` for events of ``kind`` (or ``"*"``)."""
        token = next(self._tokens)
        self._handlers.setdefault(kind, {})[token] = handler
        return Subscription(kind, token)

    def unsubscribe(self, subscription: Subscription) -> None:
        """Remove a handler; unknown subscriptions are ignored."""
        handlers = self._handlers.get(subscription.kind)
        if handlers is not None:
            handlers.pop(subscription.token, None)

    # -- causal context (used by repro.obs.provenance) ------------------------

    def cause_context(self) -> Optional[Tuple[int, int]]:
        """The ``(seq, trace)`` on top of the cause stack, if any."""
        causes = self._causes
        return causes[-1] if causes else None

    def push_cause(self, seq: int, trace: int) -> None:
        """Open a synthetic causal frame (an audit *operation*): events
        emitted until the matching :meth:`pop_cause` are its children."""
        self._causes.append((seq, trace))

    def pop_cause(self) -> None:
        self._causes.pop()

    # -- emission --------------------------------------------------------------

    def emit(self, kind: str, subject: Any = None, **data: Any) -> Event:
        """Publish an event and run its handlers synchronously."""
        seq = next(_GLOBAL_SEQ)
        causes = self._causes
        if causes:
            cause, trace = causes[-1]
        else:
            cause, trace = None, seq
        handlers = self._handlers.get(kind)
        wildcards = self._handlers.get(self.WILDCARD)
        observed = handlers or wildcards or self.record
        event = Event(
            kind, subject, data, seq, _time() if observed else 0.0, cause, trace
        )
        if self.record:
            self.history.append(event)
            if len(self.history) > self.history_limit:
                del self.history[: len(self.history) - self.history_limit]
        if handlers or wildcards:
            causes.append((seq, trace))
            try:
                if handlers:
                    for handler in list(handlers.values()):
                        handler(event)
                if wildcards:
                    for handler in list(wildcards.values()):
                        handler(event)
            finally:
                causes.pop()
        return event

    def events_of(self, kind: str) -> Tuple[Event, ...]:
        """Recorded events of one kind (requires ``record=True``)."""
        return tuple(event for event in self.history if event.kind == kind)

    def clear_history(self) -> None:
        self.history.clear()
