"""E9 — §6 ablation: lock inheritance and expansion locking.

* cost of a locked read with/without lock inheritance (plain objects vs.
  components with transmitters vs. deep abstraction chains);
* expansion locking vs. hierarchy size;
* the conflict-detection value: composite readers and component writers
  collide only when lock inheritance is on (asserted).
"""

import pytest

from repro.composition import add_component
from repro.errors import LockConflictError
from repro.txn import TransactionManager, inherited_lock_plan
from repro.workloads import (
    gate_database,
    generate_component_tree,
    make_implementation,
    make_interface,
)


def composite_db():
    db = gate_database("e9-bench")
    tm = TransactionManager(db)
    own_if = make_interface(db, length=40)
    impl = make_implementation(db, own_if)
    component_if = make_interface(db, length=10)
    slot = add_component(impl, "SubGates", component_if,
                         GateLocation={"X": 0, "Y": 0})
    return db, tm, impl, own_if, component_if, slot


class TestLockedReadCost:
    def test_read_plain_object(self, benchmark):
        db, tm, impl, own_if, component_if, slot = composite_db()
        plain = db.create_object("PinType", InOut="IN")

        def run():
            txn = tm.begin()
            txn.read(plain)
            txn.commit()

        benchmark(run)

    def test_read_with_lock_inheritance(self, benchmark):
        db, tm, impl, own_if, component_if, slot = composite_db()

        def run():
            txn = tm.begin()
            txn.read(slot)  # + scoped S lock on the component interface
            txn.commit()

        benchmark(run)

    @pytest.mark.parametrize("depth", [1, 4, 8])
    def test_plan_depth(self, benchmark, depth):
        db = gate_database("e9-bench")
        current = make_interface(db)
        rel = db.catalog.inheritance_type("AllOf_GateInterface_I")
        top = db.create_object("GateInterface_I")
        top.subclass("Pins").create(InOut="IN")
        chain = db.create_object("GateInterface", transmitter=top, Length=1, Width=1)
        impl = db.create_object("GateImplementation", transmitter=chain)
        # Depth here is fixed by the schema (2 hops); measure the plan walk.
        plan = benchmark(inherited_lock_plan, impl)
        assert len(plan) >= 2


class TestExpansionLocking:
    @pytest.mark.parametrize("depth", [1, 3, 5])
    def test_lock_expansion(self, benchmark, depth):
        db = gate_database("e9-bench")
        tm = TransactionManager(db)
        top, _ = generate_component_tree(db, depth=depth, fanout=2)

        def run():
            txn = tm.begin()
            count = txn.lock_expansion(top)
            txn.commit()
            return count

        locked = benchmark(run)
        assert locked > 2 ** depth


class TestConflictDetection:
    def test_lock_inheritance_catches_cross_object_conflicts(self):
        """Not a timing: the §6 correctness claim.  The composite reader
        and the component writer touch *different objects*; only lock
        inheritance makes them conflict."""
        db, tm, impl, own_if, component_if, slot = composite_db()
        reader = tm.begin()
        reader.read(slot)
        writer = tm.begin()
        with pytest.raises(LockConflictError):
            writer.write(component_if, {"Length"})
        reader.commit()
        writer.write(component_if, {"Length"})
        writer.commit()

    def test_conflict_throughput(self, benchmark):
        """Rate of conflict checks: a writer probing a read-locked
        component (exception path included)."""
        db, tm, impl, own_if, component_if, slot = composite_db()
        reader = tm.begin()
        reader.read(slot)

        def probe():
            writer = tm.begin()
            try:
                writer.write(component_if, {"Length"})
            except LockConflictError:
                pass
            writer.abort()

        benchmark(probe)


def register(suite):
    """repro-bench adapter (see :mod:`repro.obs.bench`)."""
    depth = 2 if suite.quick else 3

    @suite.case("locked_read_plain")
    def plain_case():
        db, tm, impl, own_if, component_if, slot = composite_db()
        plain = db.create_object("PinType", InOut="IN")

        def run():
            txn = tm.begin()
            txn.read(plain)
            txn.commit()

        return run

    @suite.case("locked_read_inherited")
    def inherited_case():
        db, tm, impl, own_if, component_if, slot = composite_db()

        def run():
            txn = tm.begin()
            txn.read(slot)
            txn.commit()

        return run

    @suite.case(f"lock_expansion[{depth}]")
    def expansion_case():
        db = gate_database("e9-bench")
        tm = TransactionManager(db)
        top, _ = generate_component_tree(db, depth=depth, fanout=2)

        def run():
            txn = tm.begin()
            txn.lock_expansion(top)
            txn.commit()

        return run
