"""Class extents.

§3: *"Classes are sets of objects belonging to the same object type;
several classes may have objects of the same type."*  An :class:`Extent` is
one such class: a named set of objects of (a subtype of) one object type.
An object may be a member of several extents; subobjects of complex objects
live in their local subclasses, not in extents.

Extents created through :meth:`~repro.engine.database.Database.create_class`
notify the database's :class:`~repro.query.indexes.IndexManager` on
membership changes, and keep two cheap sidecars for the query planner: a
per-member insertion ordinal (index lookups are re-emitted in scan order)
and a live count per concrete member type (used to prove bare identifiers
constant-foldable).
"""

from __future__ import annotations

import itertools
from collections import Counter
from typing import Any, Dict, Iterator, List, Optional

from ..core.objects import DBObject
from ..core.objtype import TypeBase
from ..core.surrogate import Surrogate
from ..errors import SchemaError

__all__ = ["Extent"]


class Extent:
    """A database class: a named set of same-typed objects."""

    def __init__(
        self, name: str, object_type: TypeBase, database: Any = None
    ) -> None:
        if not name.isidentifier():
            raise SchemaError(f"class name {name!r} is not a valid identifier")
        self.name = name
        self.object_type = object_type
        self._members: Dict[Surrogate, DBObject] = {}
        #: surrogate -> insertion ordinal; the scan order of members().
        self._order: Dict[Surrogate, int] = {}
        self._seq = itertools.count(1)
        #: Live count per concrete member type.
        self._type_counts: Counter[TypeBase] = Counter()
        self._indexes = getattr(database, "indexes", None)

    def add(self, obj: DBObject) -> DBObject:
        """Add an object; its type must conform to the extent's type."""
        if not obj.object_type.conforms_to(self.object_type):
            raise SchemaError(
                f"class {self.name!r} holds {self.object_type.name!r} objects; "
                f"got {obj.object_type.name!r}"
            )
        if obj.surrogate in self._members:
            self._members[obj.surrogate] = obj
            return obj
        self._members[obj.surrogate] = obj
        self._order[obj.surrogate] = next(self._seq)
        self._type_counts[obj.object_type] += 1
        if self._indexes is not None:
            self._indexes.extent_member_added(self, obj)
        return obj

    def discard(self, obj: DBObject) -> None:
        """Remove an object from the class (the object itself survives)."""
        if self._members.pop(obj.surrogate, None) is None:
            return
        self._order.pop(obj.surrogate, None)
        self._type_counts[obj.object_type] -= 1
        if self._type_counts[obj.object_type] <= 0:
            del self._type_counts[obj.object_type]
        if self._indexes is not None:
            self._indexes.extent_member_removed(self, obj)

    def members(self) -> List[DBObject]:
        """Snapshot list of the current members."""
        return list(self._members.values())

    def get(self, surrogate: Surrogate) -> Optional[DBObject]:
        return self._members.get(surrogate)

    def __iter__(self) -> Iterator[DBObject]:
        return iter(list(self._members.values()))

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, obj: object) -> bool:
        return isinstance(obj, DBObject) and obj.surrogate in self._members

    def __repr__(self) -> str:
        return f"<Extent {self.name} of {self.object_type.name} n={len(self)}>"
