"""E7 — §4.2 ablation: selective permeability and hierarchy depth.

Measures the read path of value inheritance:

* resolution cost vs. the width of the `inheriting:` list (narrow
  SomeOf-style relationships vs. AllOf);
* resolution cost vs. abstraction-hierarchy depth (each level adds one
  delegation hop);
* the type-level cost of computing effective members for wide schemas.
"""

import pytest

from repro.core import (
    INTEGER,
    InheritanceRelationshipType,
    ObjectType,
    new_object,
)

WIDTHS = [2, 16, 64]
DEPTHS = [1, 4, 8]


def wide_transmitter_type(width):
    return ObjectType(
        f"Wide{width}",
        attributes={f"A{i}": INTEGER for i in range(width)},
    )


class TestPermeabilityWidth:
    @pytest.mark.parametrize("width", WIDTHS)
    def test_narrow_relationship_read(self, benchmark, width):
        """Inherit only one of `width` attributes — the SomeOf pattern."""
        transmitter_type = wide_transmitter_type(width)
        rel = InheritanceRelationshipType("Narrow", transmitter_type, ["A0"])
        inheritor_type = ObjectType("N")
        inheritor_type.declare_inheritor_in(rel)
        transmitter = new_object(transmitter_type, **{f"A{i}": i for i in range(width)})
        inheritor = new_object(inheritor_type, transmitter=transmitter)
        assert inheritor["A0"] == 0
        benchmark(inheritor.get_member, "A0")

    @pytest.mark.parametrize("width", WIDTHS)
    def test_allof_relationship_read(self, benchmark, width):
        """Inherit all attributes; read the *last* declared one."""
        transmitter_type = wide_transmitter_type(width)
        rel = InheritanceRelationshipType(
            "AllOf", transmitter_type, [f"A{i}" for i in range(width)]
        )
        inheritor_type = ObjectType("N")
        inheritor_type.declare_inheritor_in(rel)
        transmitter = new_object(transmitter_type, **{f"A{i}": i for i in range(width)})
        inheritor = new_object(inheritor_type, transmitter=transmitter)
        benchmark(inheritor.get_member, f"A{width - 1}")

    @pytest.mark.parametrize("width", WIDTHS)
    def test_effective_attributes_cost(self, benchmark, width):
        transmitter_type = wide_transmitter_type(width)
        rel = InheritanceRelationshipType(
            "AllOf", transmitter_type, [f"A{i}" for i in range(width)]
        )
        inheritor_type = ObjectType("N", attributes={"Own": INTEGER})
        inheritor_type.declare_inheritor_in(rel)
        result = benchmark(inheritor_type.effective_attributes)
        assert len(result) == width + 1


class TestHierarchyDepth:
    @pytest.mark.parametrize("depth", DEPTHS)
    def test_read_through_chain(self, benchmark, depth):
        """GateInterface_I-style hierarchies: one hop per level."""
        base_type = ObjectType("L0", attributes={"V": INTEGER})
        current_type = base_type
        rels = []
        for level in range(1, depth + 1):
            rel = InheritanceRelationshipType(f"R{level}", current_type, ["V"])
            next_type = ObjectType(f"L{level}")
            next_type.declare_inheritor_in(rel)
            rels.append(rel)
            current_type = next_type

        top = new_object(base_type, V=42)
        current = top
        for level in range(1, depth + 1):
            obj_type = rels[level - 1].known_inheritor_types[0]
            current = new_object(obj_type, transmitter=current, via=rels[level - 1])
        assert current["V"] == 42
        benchmark(current.get_member, "V")

    @pytest.mark.parametrize("depth", DEPTHS)
    def test_read_through_chain_cached(self, benchmark, depth):
        """Ablation: the materialising cache flattens the chain cost to a
        dict lookup — at the price of invalidation work on updates."""
        from repro.composition import InheritedValueCache
        from repro.workloads import gate_database

        db = gate_database("e7-cache")
        cache = InheritedValueCache(db)
        base_type = ObjectType("L0", attributes={"V": INTEGER})
        current_type = base_type
        top = new_object(base_type, database=db, V=42)
        current = top
        for level in range(1, depth + 1):
            rel = InheritanceRelationshipType(f"R{level}", current_type, ["V"])
            next_type = ObjectType(f"L{level}")
            next_type.declare_inheritor_in(rel)
            current = new_object(next_type, database=db, transmitter=current, via=rel)
            current_type = next_type
        assert cache.get(current, "V") == 42  # warm the entry
        benchmark(cache.get, current, "V")

    @pytest.mark.parametrize("depth", DEPTHS)
    def test_update_at_root_with_cache_invalidation(self, benchmark, depth):
        """Ablation: with the cache attached, a root update pays the
        downward invalidation walk (O(depth) here)."""
        from repro.composition import InheritedValueCache
        from repro.workloads import gate_database

        db = gate_database("e7-cache")
        cache = InheritedValueCache(db)
        base_type = ObjectType("L0", attributes={"V": INTEGER})
        current_type = base_type
        top = new_object(base_type, database=db, V=0)
        current = top
        for level in range(1, depth + 1):
            rel = InheritanceRelationshipType(f"R{level}", current_type, ["V"])
            next_type = ObjectType(f"L{level}")
            next_type.declare_inheritor_in(rel)
            current = new_object(next_type, database=db, transmitter=current, via=rel)
            current_type = next_type
        counter = iter(range(10**9))

        def update_and_rewarm():
            top.set_attribute("V", next(counter))
            cache.get(current, "V")

        benchmark(update_and_rewarm)

    @pytest.mark.parametrize("depth", DEPTHS)
    def test_update_at_root_constant(self, benchmark, depth):
        """Updates stay O(1) no matter how deep the hierarchy below."""
        base_type = ObjectType("L0", attributes={"V": INTEGER})
        current_type = base_type
        top = new_object(base_type, V=0)
        current = top
        for level in range(1, depth + 1):
            rel = InheritanceRelationshipType(f"R{level}", current_type, ["V"])
            next_type = ObjectType(f"L{level}")
            next_type.declare_inheritor_in(rel)
            current = new_object(next_type, transmitter=current, via=rel)
            current_type = next_type
        counter = iter(range(10**9))
        benchmark(lambda: top.set_attribute("V", next(counter)))


def _chain(db, depth, cache=None):
    base_type = ObjectType("L0", attributes={"V": INTEGER})
    current_type = base_type
    top = new_object(base_type, database=db, V=42)
    current = top
    for level in range(1, depth + 1):
        rel = InheritanceRelationshipType(f"R{level}", current_type, ["V"])
        next_type = ObjectType(f"L{level}")
        next_type.declare_inheritor_in(rel)
        current = new_object(
            next_type, database=db, transmitter=current, via=rel
        )
        current_type = next_type
    return top, current


def register(suite):
    """repro-bench adapter (see :mod:`repro.obs.bench`)."""
    width = 16 if suite.quick else 64
    depth = 4 if suite.quick else 8

    @suite.case(f"narrow_read[{width}]")
    def narrow_case():
        transmitter_type = wide_transmitter_type(width)
        rel = InheritanceRelationshipType("Narrow", transmitter_type, ["A0"])
        inheritor_type = ObjectType("N")
        inheritor_type.declare_inheritor_in(rel)
        transmitter = new_object(
            transmitter_type, **{f"A{i}": i for i in range(width)}
        )
        inheritor = new_object(inheritor_type, transmitter=transmitter)
        assert inheritor["A0"] == 0
        return lambda: inheritor.get_member("A0")

    @suite.case(f"allof_read[{width}]")
    def allof_case():
        transmitter_type = wide_transmitter_type(width)
        rel = InheritanceRelationshipType(
            "AllOf", transmitter_type, [f"A{i}" for i in range(width)]
        )
        inheritor_type = ObjectType("N")
        inheritor_type.declare_inheritor_in(rel)
        transmitter = new_object(
            transmitter_type, **{f"A{i}": i for i in range(width)}
        )
        inheritor = new_object(inheritor_type, transmitter=transmitter)
        return lambda: inheritor.get_member(f"A{width - 1}")

    @suite.case(f"chain_read[{depth}]")
    def chain_case():
        from repro.workloads import gate_database

        db = gate_database("e7-bench")
        _top, bottom = _chain(db, depth)
        assert bottom["V"] == 42
        return lambda: bottom.get_member("V")

    @suite.case(f"chain_read_cached[{depth}]")
    def cached_case():
        from repro.composition import InheritedValueCache
        from repro.workloads import gate_database

        db = gate_database("e7-cache")
        cache = InheritedValueCache(db)
        _top, bottom = _chain(db, depth)
        assert cache.get(bottom, "V") == 42
        return lambda: cache.get(bottom, "V")
