"""E20 — materialized per-type views: flattened inherited reads vs live
resolution.

A gate library at 10k/50k implementations, each bound to one of n/50
shared interfaces (fan-out 50), filtering on the *inherited* ``Length``
— the workload PR 7's batch scans could never take, because an inherited
read leaves the object's own column store and walks the binding chain.
Two unindexed workloads, each in three engine modes:

* **equality scan** (``Length = 5``, ~1% selectivity) and **range scan**
  (``Length > 90``, ~6% selectivity);
* ``view`` — the materialized path: one flattened row per implementation,
  inherited values denormalized into contiguous columns, scanned by a
  generated program;
* ``live-compiled`` (``views=False``) — PR 7's engine: compiled programs
  whose inherited reads fall back to per-object resolution;
* ``tree-walk`` (``views=False, compiled=False``) — the interpretive
  oracle, the paper-faithful resolution walk.

The **maintenance tax** cases price the write side: transmitter updates
at fan-out 50 (one write refreshes 50 view rows) vs fan-out 1, against
the same writes with no view built.

The acceptance shape: at 50k objects the view scans beat the tree-walk
oracle by ~12× (≥7× asserted in-test for noise headroom) and the
live-compiled engine by ~3-4×.  Value indexes are off throughout: sub-linear access-path
selection is E15's experiment, and when an index fits, it wins — views
take the plans indexes *don't* cover (inherited members, range-heavy
residuals over unindexed attributes).
"""

import pytest

from repro.core.domains import ANY
from repro.engine import Database
from repro.query.executor import run_query

SIZES = [10_000, 50_000]
FAN_OUT = 50

EQ_QUERY = "select * from Impls where Length = 5"
RANGE_QUERY = "select * from Impls where Length > 90"

_cache = {}


def gates_db(n, fan_out=FAN_OUT):
    """A cached n-implementation library: n/fan_out interfaces, every
    implementation inheriting Length/Width, no value indexes."""
    key = (n, fan_out)
    if key not in _cache:
        db = Database(f"e20-{n}-{fan_out}")
        db.indexes.auto = False
        iface = db.catalog.define_object_type(
            "Iface", attributes={"Length": ANY, "Width": ANY}
        )
        all_of = db.catalog.define_inheritance_type(
            "AllOf_Iface", iface, ["Length", "Width"]
        )
        impl = db.catalog.define_object_type("Impl", attributes={"Serial": ANY})
        impl.declare_inheritor_in(all_of)
        db.create_class("Impls", impl)
        interfaces = [
            db.create_object(iface, Length=i % 97, Width=i % 7)
            for i in range(max(1, n // fan_out))
        ]
        for i in range(n):
            db.create_object(
                "Impl",
                class_name="Impls",
                transmitter=interfaces[i // fan_out],
                Serial=i,
            )
        # Warm the parse cache, the compiled programs and the view build
        # so the benchmark measures steady-state scans.
        run_query(db, EQ_QUERY)
        run_query(db, RANGE_QUERY)
        run_query(db, EQ_QUERY, views=False)
        _cache[key] = (db, interfaces)
    return _cache[key]


def expected(n, fan_out, predicate):
    return sum(
        1 for i in range(n) if predicate((i // fan_out) % 97)
    )


class TestEqualityScan:
    @pytest.mark.parametrize("n", SIZES)
    def test_eq_view(self, benchmark, n):
        db, _ = gates_db(n)
        result = benchmark(run_query, db, EQ_QUERY)
        assert len(result) == expected(n, FAN_OUT, lambda v: v == 5)
        assert result.plan.access_path == "view"

    @pytest.mark.parametrize("n", SIZES)
    def test_eq_live_compiled(self, benchmark, n):
        db, _ = gates_db(n)
        result = benchmark(run_query, db, EQ_QUERY, views=False)
        assert len(result) == expected(n, FAN_OUT, lambda v: v == 5)
        assert result.plan.access_path == "full-scan"

    @pytest.mark.parametrize("n", SIZES)
    def test_eq_tree_walk(self, benchmark, n):
        db, _ = gates_db(n)
        result = benchmark(run_query, db, EQ_QUERY, views=False, compiled=False)
        assert len(result) == expected(n, FAN_OUT, lambda v: v == 5)


class TestRangeScan:
    @pytest.mark.parametrize("n", SIZES)
    def test_range_view(self, benchmark, n):
        db, _ = gates_db(n)
        result = benchmark(run_query, db, RANGE_QUERY)
        assert len(result) == expected(n, FAN_OUT, lambda v: v > 90)
        assert result.plan.access_path == "view"

    @pytest.mark.parametrize("n", SIZES)
    def test_range_live_compiled(self, benchmark, n):
        db, _ = gates_db(n)
        result = benchmark(run_query, db, RANGE_QUERY, views=False)
        assert len(result) == expected(n, FAN_OUT, lambda v: v > 90)

    @pytest.mark.parametrize("n", SIZES)
    def test_range_tree_walk(self, benchmark, n):
        db, _ = gates_db(n)
        result = benchmark(
            run_query, db, RANGE_QUERY, views=False, compiled=False
        )
        assert len(result) == expected(n, FAN_OUT, lambda v: v > 90)


class TestMaintenanceTax:
    """The write-side price: one transmitter update refreshes fan-out
    view rows.  Measured as a round of writes over every interface."""

    def _write_round(self, db, interfaces):
        for i, iface in enumerate(interfaces):
            iface.set_attribute("Length", (i + 1) % 97)

    @pytest.mark.parametrize("fan_out", [1, FAN_OUT])
    def test_writes_with_view(self, benchmark, fan_out):
        db, interfaces = gates_db(10_000, fan_out)
        run_query(db, EQ_QUERY)  # view built: maintenance is live
        benchmark(self._write_round, db, interfaces)

    @pytest.mark.parametrize("fan_out", [1, FAN_OUT])
    def test_writes_without_view(self, benchmark, fan_out):
        db, interfaces = gates_db(10_000, fan_out)
        db.views.drop_views()
        db.views.auto = False  # never rebuilt: the no-view write baseline
        try:
            benchmark(self._write_round, db, interfaces)
        finally:
            db.views.auto = True


class TestAcceptance:
    def test_view_beats_tree_walk_10x_at_50k(self):
        """The PR's acceptance gate, measured in-process (best of 5)."""
        from time import perf_counter

        db, _ = gates_db(50_000)

        def best_of(fn, reps=5):
            best = float("inf")
            for _ in range(reps):
                started = perf_counter()
                fn()
                best = min(best, perf_counter() - started)
            return best

        for label, query in (("eq", EQ_QUERY), ("range", RANGE_QUERY)):
            routed = run_query(db, query)
            assert routed.plan.access_path == "view"
            view = best_of(lambda: run_query(db, query))
            live = best_of(lambda: run_query(db, query, views=False))
            walk = best_of(
                lambda: run_query(db, query, views=False, compiled=False)
            )
            # 7× in-test floor: quiet runs measure ~12× on both scans
            # (see EXPERIMENTS.md); CI boxes get noise headroom.
            assert walk / view >= 7.0, f"{label}: only {walk / view:.1f}x"
            # The view must also beat PR 7's compiled live path, whose
            # inherited reads resolve per object.
            assert live / view > 1.0, f"{label}: live {live / view:.2f}x"


def register(suite):
    """repro-bench adapter (see :mod:`repro.obs.bench`)."""
    sizes = [2_000] if suite.quick else SIZES
    for n in sizes:

        @suite.case(f"eq_view[{n}]")
        def eq_view_case(n=n):
            db, _ = gates_db(n)
            return lambda: run_query(db, EQ_QUERY)

        @suite.case(f"eq_live_compiled[{n}]")
        def eq_live_case(n=n):
            db, _ = gates_db(n)
            return lambda: run_query(db, EQ_QUERY, views=False)

        @suite.case(f"eq_tree_walk[{n}]")
        def eq_walk_case(n=n):
            db, _ = gates_db(n)
            return lambda: run_query(db, EQ_QUERY, views=False, compiled=False)

        @suite.case(f"range_view[{n}]")
        def range_view_case(n=n):
            db, _ = gates_db(n)
            return lambda: run_query(db, RANGE_QUERY)

        @suite.case(f"range_live_compiled[{n}]")
        def range_live_case(n=n):
            db, _ = gates_db(n)
            return lambda: run_query(db, RANGE_QUERY, views=False)

        @suite.case(f"range_tree_walk[{n}]")
        def range_walk_case(n=n):
            db, _ = gates_db(n)
            return lambda: run_query(
                db, RANGE_QUERY, views=False, compiled=False
            )

    @suite.case("write_round_with_view[10k/fan50]")
    def maint_with_view_case():
        db, interfaces = gates_db(10_000)
        run_query(db, EQ_QUERY)

        def round_():
            for i, iface in enumerate(interfaces):
                iface.set_attribute("Length", (i + 1) % 97)

        return round_

    @suite.case("write_round_without_view[10k/fan50]")
    def maint_without_view_case():
        db, interfaces = gates_db(10_000)
        db.views.drop_views()
        db.views.auto = False

        def round_():
            for i, iface in enumerate(interfaces):
                iface.set_attribute("Length", (i + 1) % 97)

        return round_
