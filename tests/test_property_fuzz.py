"""Fuzz-style property tests: parsers never crash with anything but their
declared error types, and evaluation never corrupts state."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ddl.lexer import tokenize_ddl
from repro.ddl.parser import parse_schema_source
from repro.errors import (
    DDLSyntaxError,
    ExprEvaluationError,
    ExprSyntaxError,
    QueryError,
    ReproError,
)
from repro.expr import EvalContext, parse_expression
from repro.expr.lexer import tokenize
from repro.query import parse_query

printable = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126), max_size=80
)


class TestLexersTotal:
    @given(printable)
    def test_expr_tokenize_total(self, source):
        try:
            tokens = tokenize(source)
        except ExprSyntaxError:
            return
        assert tokens[-1].kind == "EOF"

    @given(printable)
    def test_ddl_tokenize_total(self, source):
        try:
            tokens = tokenize_ddl(source)
        except DDLSyntaxError:
            return
        assert tokens[-1].kind == "EOF"


class TestParsersRaiseOnlyDeclaredErrors:
    @given(printable)
    def test_expr_parser(self, source):
        try:
            parse_expression(source)
        except ExprSyntaxError:
            pass

    @given(printable)
    def test_ddl_parser(self, source):
        try:
            parse_schema_source(source)
        except DDLSyntaxError:
            pass

    @given(printable)
    def test_query_parser(self, source):
        try:
            parse_query(source)
        except (QueryError, ExprSyntaxError):
            pass

    @given(printable)
    def test_query_parser_with_select_prefix(self, source):
        try:
            parse_query("select " + source)
        except (QueryError, ExprSyntaxError):
            pass


class TestEvaluationContained:
    class Obj:
        def __init__(self, **members):
            self._members = members

        def get_member(self, name):
            return self._members[name]

    @settings(max_examples=200)
    @given(printable, st.integers(-5, 5), st.lists(st.integers(-3, 3), max_size=4))
    def test_evaluation_raises_only_declared_errors(self, source, n, items):
        try:
            node = parse_expression(source)
        except ExprSyntaxError:
            return
        root = self.Obj(N=n, Items=items)
        try:
            node.evaluate(EvalContext(root))
        except (ExprEvaluationError, ReproError):
            pass
        except RecursionError:
            pass
