"""REP6xx engine-invariant lint: the analyzer pointed at our own source.

PR 5's analyzer proves *schemas* sound before execution; this module does
the same for the engine's concurrency discipline.  Each rule encodes an
invariant the subsystems rely on but nothing previously enforced:

* **REP601** — a direct ``obj._attrs[...]`` mutation in a function that
  never bumps ``_mutation_epoch``.  The raw :class:`~repro.core.slots.
  AttrsView` write path is deliberately side-effect-free; every raw
  writer (transaction undo, version revert, merge apply) must manage the
  epoch itself or memoised readers and value indexes serve stale values.
* **REP602** — an ``Event(...)`` constructed outside
  ``engine/events.py``.  Only the bus stamps sequence numbers and the
  cause stack; a hand-built event silently breaks every audit consumer.
* **REP603** — a ``lock.acquire()`` whose paired ``release()`` is not in
  a ``finally`` block: an exception in between leaks the lock and
  strands every parked waiter.
* **REP604** — iteration over the lock table's shared dictionaries
  (``_locks`` / ``_waits_for`` / ``_by_txn`` / ``_groups``) outside a
  ``with <mutex>`` region and without materialising a snapshot first —
  a concurrent mutation raises ``RuntimeError: dict changed size``.

Findings flow through the same :mod:`repro.analysis.diagnostics` registry
and :mod:`repro.analysis.emit` emitters as the schema rules, so
``repro lint --engine`` speaks text/JSON/SARIF with no extra plumbing.

Suppression: a justified exception carries ``# lint: allow(REP6xx)`` on
the offending line — e.g. persistence restore writes ``_attrs`` on fresh
objects no reader has ever memoised.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .diagnostics import Diagnostic, SourceLocation, make
from .lockorder import default_engine_root

__all__ = [
    "lint_engine",
    "lint_source",
    "EngineLintResult",
]

#: The event-bus module: the one place allowed to construct ``Event``.
_EVENT_AUTHORITY = os.path.join("engine", "events.py")

#: Shared lock-table dictionaries whose iteration needs the mutex or a
#: snapshot (REP604).
_SHARED_DICTS = ("_locks", "_waits_for", "_by_txn", "_groups")

#: Mutex-ish attribute names that establish a held region for REP604.
_MUTEX_ATTRS = ("_mutex", "_lock", "_cond")

#: Materialisers that snapshot an iterable before iteration.
_SNAPSHOTTERS = {"list", "tuple", "set", "sorted", "dict", "frozenset", "len"}

_ALLOW_RE = re.compile(r"#\s*lint:\s*allow\(([A-Z0-9,\s]+)\)")


@dataclass
class EngineLintResult:
    """Diagnostics plus scan statistics for one lint run."""

    diagnostics: List[Diagnostic]
    files_scanned: int
    suppressed: int


def _allowed_codes(source_lines: Sequence[str]) -> Dict[int, Set[str]]:
    """line number -> codes suppressed by a ``# lint: allow(...)`` pragma."""
    allowed: Dict[int, Set[str]] = {}
    for index, line in enumerate(source_lines, start=1):
        match = _ALLOW_RE.search(line)
        if match:
            codes = {code.strip() for code in match.group(1).split(",")}
            allowed[index] = {code for code in codes if code}
    return allowed


def _attr_chain_root(node: ast.expr) -> Optional[str]:
    while isinstance(node, ast.Attribute):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


class _FileLinter(ast.NodeVisitor):
    """One source file's REP601/602/603/604 findings."""

    def __init__(self, path: str, rel: str, tree: ast.Module) -> None:
        self.path = path
        self.rel = rel
        self.tree = tree
        self.findings: List[Diagnostic] = []
        self._is_event_authority = rel.endswith(_EVENT_AUTHORITY)

    def run(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._check_function(node)
                self._check_release_discipline(node)
                self._check_shared_iteration(node)
        if not self._is_event_authority:
            self._check_event_constructions()

    # -- REP601 ---------------------------------------------------------------

    @staticmethod
    def _walk_own(fn: ast.AST) -> List[ast.AST]:
        """``ast.walk`` minus nested function bodies.

        Every function is checked once, in its own scope — a write inside
        a closure is the closure's finding, not its enclosing function's,
        and an epoch bump in the enclosing function does not absolve a
        closure that writes without one.
        """
        out: List[ast.AST] = []
        stack: List[ast.AST] = list(ast.iter_child_nodes(fn))
        while stack:
            node = stack.pop()
            out.append(node)
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                stack.extend(ast.iter_child_nodes(node))
        return out

    @staticmethod
    def _is_attrs_subscript(node: ast.expr) -> bool:
        return (isinstance(node, ast.Subscript)
                and isinstance(node.value, ast.Attribute)
                and node.value.attr == "_attrs")

    @classmethod
    def _bumps_epoch(cls, fn: ast.AST) -> bool:
        for node in cls._walk_own(fn):
            if isinstance(node, ast.AugAssign):
                target: Optional[ast.expr] = node.target
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
            else:
                continue
            if (isinstance(target, ast.Attribute)
                    and target.attr == "_mutation_epoch"):
                return True
        return False

    def _check_function(
        self, fn: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        writes: List[Tuple[int, str]] = []
        for node in self._walk_own(fn):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if self._is_attrs_subscript(target):
                        writes.append((node.lineno, "assignment"))
            elif isinstance(node, ast.AugAssign):
                if self._is_attrs_subscript(node.target):
                    writes.append((node.lineno, "augmented assignment"))
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    if self._is_attrs_subscript(target):
                        writes.append((node.lineno, "deletion"))
            elif isinstance(node, ast.Call):
                func = node.func
                if (isinstance(func, ast.Attribute)
                        and func.attr in ("update", "pop", "clear",
                                          "setdefault", "popitem")
                        and isinstance(func.value, ast.Attribute)
                        and func.value.attr == "_attrs"):
                    writes.append((node.lineno, f"{func.attr}() call"))
        if writes and not self._bumps_epoch(fn):
            for line, how in writes:
                self.findings.append(make(
                    "REP601",
                    f"raw _attrs {how} in {fn.name}(), which never bumps "
                    f"_mutation_epoch",
                    subject=fn.name,
                    location=SourceLocation(self.rel, line),
                    hint="bump obj._mutation_epoch after the write, or go "
                         "through set_attribute()",
                ))

    # -- REP602 ---------------------------------------------------------------

    def _check_event_constructions(self) -> None:
        for node in ast.walk(self.tree):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "Event"):
                self.findings.append(make(
                    "REP602",
                    "Event constructed outside the event bus (no sequence "
                    "number, no cause-stack stamp)",
                    subject="Event",
                    location=SourceLocation(self.rel, node.lineno),
                    hint="emit through EventBus so the event is stamped "
                         "into the causal order",
                ))

    # -- REP603 / REP604 ------------------------------------------------------

    @staticmethod
    def _receiver_src(func: ast.Attribute) -> Optional[str]:
        try:
            return ast.unparse(func.value)
        except Exception:  # pragma: no cover - unparse is total on 3.9+
            return None

    def _lock_calls(
        self, fn: ast.AST, attr: str
    ) -> List[Tuple[str, ast.Call]]:
        """(receiver source, call node) for every ``<recv>.<attr>()``."""
        out: List[Tuple[str, ast.Call]] = []
        for node in self._walk_own(fn):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == attr
                    and not node.keywords):
                receiver = self._receiver_src(node.func)
                if receiver is not None:
                    out.append((receiver, node))
        return out

    def _finally_lines(self, fn: ast.AST) -> Set[int]:
        lines: Set[int] = set()
        for node in self._walk_own(fn):
            if isinstance(node, ast.Try) and node.finalbody:
                for stmt in node.finalbody:
                    for sub in ast.walk(stmt):
                        line = getattr(sub, "lineno", None)
                        if line is not None:
                            lines.add(line)
        return lines

    def _check_release_discipline(
        self, fn: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        acquires = {recv for recv, _node in self._lock_calls(fn, "acquire")}
        if not acquires:
            return
        finally_lines = self._finally_lines(fn)
        for receiver, node in self._lock_calls(fn, "release"):
            if receiver in acquires and node.lineno not in finally_lines:
                self.findings.append(make(
                    "REP603",
                    f"{receiver}.release() outside finally while "
                    f"{receiver}.acquire() appears in {fn.name}()",
                    subject=receiver,
                    location=SourceLocation(self.rel, node.lineno),
                    hint="release in a finally block (or use `with`)",
                ))

    def _mutex_held_lines(self, fn: ast.AST) -> Set[int]:
        """Line numbers inside any ``with <something mutex-ish>`` body."""
        lines: Set[int] = set()
        for node in self._walk_own(fn):
            if not isinstance(node, (ast.With, ast.AsyncWith)):
                continue
            if not any(
                isinstance(item.context_expr, ast.Attribute)
                and item.context_expr.attr in _MUTEX_ATTRS
                for item in node.items
            ):
                continue
            for stmt in node.body:
                for sub in ast.walk(stmt):
                    line = getattr(sub, "lineno", None)
                    if line is not None:
                        lines.add(line)
        return lines

    def _iter_targets(self, fn: ast.AST) -> List[Tuple[ast.expr, int]]:
        """Every expression iterated by for / comprehension in ``fn``."""
        out: List[Tuple[ast.expr, int]] = []
        for node in self._walk_own(fn):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                out.append((node.iter, node.lineno))
            elif isinstance(node, (ast.ListComp, ast.SetComp,
                                   ast.DictComp, ast.GeneratorExp)):
                for gen in node.generators:
                    out.append((gen.iter, node.lineno))
        return out

    @staticmethod
    def _names_shared_dict(expr: ast.expr) -> Optional[str]:
        """``self._locks`` / ``self._locks.values()`` etc. -> attr name."""
        node: Optional[ast.expr] = expr
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("values", "items", "keys")):
            node = node.func.value
        if isinstance(node, ast.Attribute) and node.attr in _SHARED_DICTS:
            return node.attr
        return None

    def _snapshot_lines(self, fn: ast.AST) -> Set[int]:
        """Lines whose iteration feeds a materialiser (list(...), sorted)."""
        lines: Set[int] = set()
        for node in self._walk_own(fn):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id in _SNAPSHOTTERS):
                for sub in ast.walk(node):
                    line = getattr(sub, "lineno", None)
                    if line is not None:
                        lines.add(line)
        return lines

    def _check_shared_iteration(
        self, fn: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        targets = self._iter_targets(fn)
        if not targets:
            return
        held = self._mutex_held_lines(fn)
        snapshots = self._snapshot_lines(fn)
        for expr, line in targets:
            name = self._names_shared_dict(expr)
            if name is None:
                continue
            if line in held or line in snapshots:
                continue
            self.findings.append(make(
                "REP604",
                f"iteration over shared {name} outside the table mutex "
                f"and without a snapshot (in {fn.name}())",
                subject=name,
                location=SourceLocation(self.rel, line),
                hint="hold the mutex for the walk, or iterate over "
                     "list(...) / a copied snapshot",
            ))


def lint_source(
    source: str, path: str = "<engine>", rel: Optional[str] = None
) -> List[Diagnostic]:
    """Lint one source string (the differential harness's entry point)."""
    tree = ast.parse(source, filename=path)
    linter = _FileLinter(path, rel or path, tree)
    linter.run()
    allowed = _allowed_codes(source.splitlines())
    kept: List[Diagnostic] = []
    for finding in linter.findings:
        line = finding.location.line if finding.location else None
        if line is not None and finding.code in allowed.get(line, set()):
            continue
        kept.append(finding)
    return kept


def lint_engine(root: Optional[str] = None) -> EngineLintResult:
    """Lint every ``.py`` file under ``root`` (default: the repro package)."""
    base = root or default_engine_root()
    diagnostics: List[Diagnostic] = []
    files = 0
    suppressed = 0
    for dirpath, dirnames, filenames in os.walk(base):
        dirnames[:] = sorted(
            d for d in dirnames if not d.startswith((".", "__pycache__"))
        )
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            rel = os.path.relpath(path, base)
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    source = handle.read()
            except OSError:  # pragma: no cover - races with the fs
                continue
            files += 1
            try:
                before = lint_source(source, path=path, rel=rel)
            except SyntaxError:  # pragma: no cover - repo parses
                continue
            raw = _count_raw(source, path, rel)
            suppressed += raw - len(before)
            diagnostics.extend(before)
    return EngineLintResult(diagnostics, files, suppressed)


def _count_raw(source: str, path: str, rel: str) -> int:
    """Finding count before pragma filtering (for the suppressed stat)."""
    tree = ast.parse(source, filename=path)
    linter = _FileLinter(path, rel, tree)
    linter.run()
    return len(linter.findings)
