"""Surrogate identity.

Section 3 of the paper: *"Automatically, any object has an attribute called
surrogate which allows a system-wide identification of the object and which
is managed by the system."*

A :class:`Surrogate` is an immutable, hashable token.  Surrogates are never
reused within one :class:`SurrogateGenerator`, independent of deletions, and
they order by creation time, which the version and lock managers rely on.

Surrogates are *interned*: the generator registers every fresh token in the
shared pool (:mod:`repro.core.interning`), and reconstruction sites
(persistence load, CLI selectors) fold duplicates onto the live instance
via :meth:`Surrogate.intern` — registry, lock-table and index probes then
hit the dict identity fast path instead of comparing ``(value, space)``
tuples.  The hash is computed once at construction for the same reason:
surrogates key nearly every hot dictionary in the engine.
"""

from __future__ import annotations

import itertools
import sys
import threading
from dataclasses import dataclass, field
from typing import Iterator

from .interning import intern_surrogate


@dataclass(frozen=True, order=True)
class Surrogate:
    """System-wide identifier of an object or relationship object.

    Parameters
    ----------
    value:
        Monotonically increasing integer assigned by the generator.
    space:
        Name of the identifier space (usually the database name).  Two
        surrogates from different spaces never compare equal even when
        their integer parts collide.
    """

    value: int
    space: str = field(default="db")
    #: Hash of ``(value, space)``, precomputed — excluded from eq/order.
    _hash: int = field(default=0, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "_hash", hash((self.value, self.space)))

    def __hash__(self) -> int:
        return self._hash

    def intern(self) -> "Surrogate":
        """The canonical live instance of this token (see interning pool)."""
        return intern_surrogate(self)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"@{self.space}:{self.value}"

    def __repr__(self) -> str:
        return f"Surrogate({self.value!r}, space={self.space!r})"


class SurrogateGenerator:
    """Thread-safe generator of fresh surrogates for one identifier space.

    >>> gen = SurrogateGenerator("demo")
    >>> a, b = gen.fresh(), gen.fresh()
    >>> a != b and a < b
    True
    """

    def __init__(self, space: str = "db", start: int = 1) -> None:
        if start < 0:
            raise ValueError("surrogate counter must start non-negative")
        # One canonical space string per generator: every surrogate of the
        # space shares it, so eq/order tuple compares hit identity first.
        self._space = sys.intern(space)
        self._counter = itertools.count(start)
        self._lock = threading.Lock()
        self._last = start - 1

    @property
    def space(self) -> str:
        """Identifier space this generator issues surrogates for."""
        return self._space

    @property
    def last_issued(self) -> int:
        """Integer part of the most recently issued surrogate."""
        return self._last

    def fresh(self) -> Surrogate:
        """Return a surrogate never issued before by this generator.

        The fresh token is registered in the shared interning pool at
        creation time, making it the canonical instance later
        reconstructions resolve to.
        """
        with self._lock:
            value = next(self._counter)
            self._last = value
        return intern_surrogate(Surrogate(value, self._space))

    def fresh_many(self, count: int) -> Iterator[Surrogate]:
        """Yield ``count`` fresh surrogates (convenience for bulk loads)."""
        if count < 0:
            raise ValueError("count must be non-negative")
        for _ in range(count):
            yield self.fresh()

    def advance_past(self, value: int) -> None:
        """Ensure future surrogates exceed ``value`` (used after a load)."""
        with self._lock:
            if value >= self._last:
                self._counter = itertools.count(value + 1)
                self._last = value
