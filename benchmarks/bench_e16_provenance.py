"""E16 — ablation: causal-provenance overhead on the Figure-2 workload.

The provenance contract: with observability off the audit call sites cost
one attribute load and a branch (within noise of E13's dark rows); with
observability on but ``audit=False`` the engine behaves exactly as PR 1
shipped it; with the audit log attached every measured update additionally
appends one batched ``propagation.fanout`` record (listing every reached
inheritor) to the bounded ring — one list append per inheritor on the hot
path, with per-member expansion deferred to cone/export time.

Rows to compare, per fan-out N:

* ``update_dark``        — observe off: the disabled-path floor;
* ``update_audit_off``   — observe on, audit off: the PR-1 baseline;
* ``update_audit_on``    — observe on, audit on: the provenance tax;
* ``explain_value``      — the pure interpretive provenance walk itself.

Targets (EXPERIMENTS.md): audit on ≤ 10% over the PR-1 baseline at every
fan-out; dark ≤ 1% over E13's dark row (same code path, one extra branch).
"""

import pytest

from repro.workloads import gate_database, make_implementation, make_interface

from benchmarks import obs_hook

FANOUTS = [1, 10, 100]


def _setup(n_impls, observe, audit=True):
    db = gate_database("e16-bench")
    if observe:
        db.enable_observability(tracing=False, audit=audit)
    iface = make_interface(db)
    for _ in range(n_impls):
        make_implementation(db, iface)
    return db, iface


class TestUpdateOverhead:
    @pytest.mark.parametrize("n_impls", FANOUTS)
    def test_update_dark(self, benchmark, n_impls):
        """Observe off: the audit guards must stay one load + branch."""
        db, iface = _setup(n_impls, observe=False)
        counter = iter(range(10**9))

        def update():
            iface.set_attribute("Length", 10 + next(counter) % 50)

        benchmark(update)
        assert db.obs is None

    @pytest.mark.parametrize("n_impls", FANOUTS)
    def test_update_audit_off(self, benchmark, n_impls):
        """Observe on, audit off: the PR-1 measurement baseline."""
        db, iface = _setup(n_impls, observe=True, audit=False)
        counter = iter(range(10**9))

        def update():
            iface.set_attribute("Length", 10 + next(counter) % 50)

        benchmark(update)
        assert db.obs.audit is None
        assert db.obs.metrics.value("propagation.updates") > 0

    @pytest.mark.parametrize("n_impls", FANOUTS)
    def test_update_audit_on(self, benchmark, n_impls):
        """Audit on: one batched propagation.fanout record per update."""
        db, iface = _setup(n_impls, observe=True, audit=True)
        counter = iter(range(10**9))

        def update():
            iface.set_attribute("Length", 10 + next(counter) % 50)

        benchmark(update)
        audit = db.obs.audit
        assert audit is not None and audit.appended > 0
        fanouts = audit.records(kind="propagation.fanout")
        assert fanouts
        assert len(fanouts[-1].detail["reached"]) == n_impls
        cones = audit.cones(kind="attribute_updated")
        assert any(cone.breadth == n_impls for cone in cones)
        obs_hook.collect(db, label=f"update_audit_on[{n_impls}]")


class TestProvenanceQueries:
    def test_explain_value(self, benchmark):
        """The interpretive provenance walk for a one-hop inherited read."""
        db, iface = _setup(1, observe=False)
        impl = db.objects_of_type("GateImplementation")[0]
        provenance = benchmark(db.explain_value, impl, "Length")
        assert provenance.holder is iface
        assert provenance.hops == 1

    def test_cone_reconstruction(self, benchmark):
        """Grouping a populated ring into cones (100 updates, fan-out 10)."""
        db, iface = _setup(10, observe=True, audit=True)
        for index in range(100):
            iface.set_attribute("Length", 10 + index % 50)
        audit = db.obs.audit

        cones = benchmark(audit.cones, "attribute_updated")
        assert cones and all(cone.breadth == 10 for cone in cones if cone.breadth)
        obs_hook.collect(db, label="cone_reconstruction")


def register(suite):
    """repro-bench adapter (see :mod:`repro.obs.bench`)."""
    fanout = 10

    @suite.case(f"update_dark[{fanout}]")
    def dark_case():
        db, iface = _setup(fanout, observe=False)
        counter = iter(range(10**9))
        return lambda: iface.set_attribute("Length", 10 + next(counter) % 50)

    @suite.case(f"update_audit_off[{fanout}]")
    def audit_off_case():
        db, iface = _setup(fanout, observe=True, audit=False)
        counter = iter(range(10**9))
        return lambda: iface.set_attribute("Length", 10 + next(counter) % 50)

    @suite.case(f"update_audit_on[{fanout}]")
    def audit_on_case():
        db, iface = _setup(fanout, observe=True, audit=True)
        counter = iter(range(10**9))
        return lambda: iface.set_attribute("Length", 10 + next(counter) % 50)

    @suite.case("explain_value")
    def explain_case():
        db, iface = _setup(1, observe=False)
        impl = db.objects_of_type("GateImplementation")[0]
        assert db.explain_value(impl, "Length").hops == 1
        return lambda: db.explain_value(impl, "Length")
