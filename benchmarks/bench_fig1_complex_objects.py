"""E1 — Figure 1: complex-object construction and navigation.

Regenerates the Figure 1 scenario at scale: building Gate objects with N
elementary subgates (pins + wiring), deep traversal, deep constraint
checking and cascade deletion.  Expected shape: all four operations grow
linearly in the number of subobjects.
"""

import pytest

from repro.engine.query import walk_tree
from repro.workloads import gate_database, make_flipflop


def build_gate(db, n_subgates):
    gate = db.create_object("Gate", Length=100, Width=50)
    out_prev = None
    ext_in = gate.subclass("Pins").create(InOut="IN", PinLocation=(0, 0))
    wires = gate.subrel("Wires")
    for i in range(n_subgates):
        sub = gate.subclass("SubGates").create(
            Function="NAND", GatePosition={"X": i, "Y": 0}
        )
        a = sub.subclass("Pins").create(InOut="IN", PinLocation=(0, 0))
        sub.subclass("Pins").create(InOut="IN", PinLocation=(0, 1))
        out = sub.subclass("Pins").create(InOut="OUT", PinLocation=(1, 0))
        wires.create({"Pin1": out_prev if out_prev is not None else ext_in, "Pin2": a})
        out_prev = out
    return gate


class TestFig1Construction:
    def test_build_flipflop(self, benchmark):
        db = gate_database("fig1-bench")
        benchmark(make_flipflop, db)

    @pytest.mark.parametrize("n_subgates", [10, 50, 200])
    def test_build_gate_chain(self, benchmark, n_subgates):
        db = gate_database("fig1-bench")
        benchmark(build_gate, db, n_subgates)


class TestFig1Navigation:
    @pytest.mark.parametrize("n_subgates", [10, 50, 200])
    def test_walk_tree(self, benchmark, n_subgates):
        db = gate_database("fig1-bench")
        gate = build_gate(db, n_subgates)
        result = benchmark(lambda: sum(1 for _ in walk_tree(gate)))
        assert result == 2 + 4 * n_subgates

    @pytest.mark.parametrize("n_subgates", [10, 50, 200])
    def test_deep_constraint_check(self, benchmark, n_subgates):
        db = gate_database("fig1-bench")
        gate = build_gate(db, n_subgates)
        benchmark(gate.check_constraints, True)


class TestFig1Deletion:
    @pytest.mark.parametrize("n_subgates", [10, 100])
    def test_cascade_delete(self, benchmark, n_subgates):
        db = gate_database("fig1-bench")

        def setup():
            return (build_gate(db, n_subgates),), {}

        def run(gate):
            gate.delete()

        benchmark.pedantic(run, setup=setup, rounds=10)


def register(suite):
    """repro-bench adapter (see :mod:`repro.obs.bench`)."""
    n_subgates = 10 if suite.quick else 50

    @suite.case(f"build_gate_chain[{n_subgates}]")
    def build_case():
        db = gate_database("fig1-bench")
        return lambda: build_gate(db, n_subgates)

    @suite.case(f"walk_tree[{n_subgates}]")
    def walk_case():
        db = gate_database("fig1-bench")
        gate = build_gate(db, n_subgates)
        return lambda: sum(1 for _ in walk_tree(gate))

    @suite.case(f"deep_constraint_check[{n_subgates}]")
    def check_case():
        db = gate_database("fig1-bench")
        gate = build_gate(db, n_subgates)
        return lambda: gate.check_constraints(True)
