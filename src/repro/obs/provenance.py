"""Causal provenance: the audit log, propagation cones and value EXPLAIN.

PR 1's :class:`~repro.obs.tap.EventTap` counts events but discards
causality; this module keeps it.  Three pieces:

* :class:`AuditLog` — an append-only structured log (bounded ring plus an
  optional JSONL sink) of every bus event the tap sees **and** of derived
  operations the engine reports (propagation fan-out arrivals, index
  maintenance and self-heal, lock-inheritance acquisitions, transaction
  abort restores, composite expansion).  Every :class:`AuditRecord` carries
  the process-global ``seq``, a ``cause`` (the record whose handler or
  operation produced it) and a ``trace`` (the root of the causal chain) —
  the stamps :meth:`repro.engine.events.EventBus.emit` threads through the
  bus cause stack.

* :class:`PropagationCone` — all records of one ``trace``, reconstructed
  per root mutation: depth, breadth, per-relationship-type membership and
  wall time of §4.2's update fan-out.  Cone membership is exactly what
  :func:`repro.core.inheritance.iter_propagation` reaches (the tests
  verify the equivalence).

* :func:`explain_value` — the full provenance of one member read: the
  inheritance path the compiled
  :class:`~repro.core.resolution.ResolutionPlan` traverses, every
  permeability decision along it, the holder that supplies the value, the
  epochs a cached resolution would be validated against, and which value
  indexes track the reading.  Works with or without observability
  attached; the chain equals :func:`repro.core.resolution.naive_resolution_chain`
  by construction (hypothesis-tested).

The whole layer is pull-free on the disabled path: engine call sites guard
with ``obs is not None and obs.audit is not None`` — one attribute load and
a branch, nothing else.
"""

from __future__ import annotations

from collections import Counter, deque
from contextlib import contextmanager
from time import time as _time
from typing import Any, Deque, Dict, Iterator, List, NamedTuple, Optional

from ..core import resolution as _resolution
from ..core.slots import UNSET as _UNSET
from ..engine.events import Event, EventBus, next_seq
from ..errors import ObjectDeletedError, UnknownAttributeError

__all__ = [
    "AuditRecord",
    "AuditLog",
    "PropagationCone",
    "ProvenanceStep",
    "ValueProvenance",
    "explain_value",
]


def _jsonable(value: Any) -> Any:
    """A JSON-safe rendering of a detail value (reprs for objects)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    return repr(value)


def _as_record(item: Any) -> "AuditRecord":
    """Normalise a ring entry.

    Mirrored bus events are stored in the ring as the frozen
    :class:`~repro.engine.events.Event` itself (it already carries the full
    record shape — ``seq``/``ts``/``kind``/``subject``/``cause``/``trace``
    with ``data`` as the detail) and are converted here, at read time, so
    the hot mirror path pays one ring append and nothing else.
    """
    if type(item) is AuditRecord:
        return item
    return AuditRecord(
        item.seq, item.ts, item.kind, item.subject, item.cause, item.trace, item.data
    )


def _subject_matches(record: "AuditRecord", subject: Any) -> bool:
    """Subject filter: identity for objects, substring-of-``repr`` for
    strings; a batched fan-out record also matches its reached inheritors."""
    if isinstance(subject, str):
        if subject in repr(record.subject):
            return True
    elif record.subject is subject:
        return True
    if record.kind == "propagation.fanout":
        reached = record.detail.get("reached") or ()
        if isinstance(subject, str):
            return any(subject in repr(inh) for _, inh, _ in reached)
        return any(inh is subject for _, inh, _ in reached)
    return False


# ---------------------------------------------------------------------------
# the audit log
# ---------------------------------------------------------------------------


class AuditRecord(NamedTuple):
    """One append-only audit entry.

    Bus events are mirrored with their own stamps (same ``seq``/``ts``/
    ``cause``/``trace`` as the :class:`~repro.engine.events.Event`); derived
    operations draw a fresh ``seq`` from the same global counter and their
    causal context from the bus cause stack, so records and events
    interleave in one deterministic total order.  (A named tuple so the
    hot append path constructs it at C speed.)
    """

    seq: int
    ts: float
    kind: str
    subject: Any
    cause: Optional[int]
    trace: int
    detail: Dict[str, Any]

    def as_dict(self) -> Dict[str, Any]:
        """The stable ``repro.audit/1`` record shape (JSON-safe)."""
        detail = {key: _jsonable(value) for key, value in self.detail.items()}
        reached = self.detail.get("reached")
        if self.kind == "propagation.fanout" and reached is not None:
            # The hot path stores raw (link, inheritor, depth) tuples;
            # exports get the structured form.
            detail["reached"] = [
                {
                    "inheritor": repr(inheritor),
                    "rel_type": link.rel_type.name,
                    "depth": depth,
                }
                for link, inheritor, depth in reached
            ]
        return {
            "seq": self.seq,
            "ts": self.ts,
            "kind": self.kind,
            "subject": repr(self.subject) if self.subject is not None else None,
            "cause": self.cause,
            "trace": self.trace,
            "detail": detail,
        }

    def __repr__(self) -> str:
        cause = f" cause={self.cause}" if self.cause is not None else ""
        return f"<AuditRecord #{self.seq} {self.kind}{cause} trace={self.trace}>"


class AuditLog:
    """Bounded append-only ring of :class:`AuditRecord`, optional JSONL sink.

    Wired by :class:`~repro.obs.instruments.Observability`: the event tap
    forwards every bus event (:meth:`on_event` — no extra bus
    subscription), engine call sites report derived operations through
    :meth:`record`, and multi-step engine operations open a causal frame
    with :meth:`operation` so the events they emit become their children.
    """

    def __init__(self, bus: EventBus, ring_size: int = 1024, sink=None):
        self.bus = bus
        #: Ring entries are AuditRecords or mirrored Events (see _as_record).
        self.ring: Deque[Any] = deque(maxlen=ring_size)
        self.sink = sink
        #: Total records ever appended (the ring is bounded, this is not).
        self.appended = 0

    # -- appending ---------------------------------------------------------------

    def _append(self, record: AuditRecord) -> AuditRecord:
        self.ring.append(record)
        self.appended += 1
        sink = self.sink
        if sink is not None:
            sink.write_record(record.as_dict())
        return record

    def on_event(self, event: Event) -> Event:
        """Mirror a bus event, reusing its causal stamps.

        The frozen event is stored as-is and normalised to an
        :class:`AuditRecord` lazily by the readers (:func:`_as_record`),
        keeping the per-event mirror cost to one ring append.
        """
        self.ring.append(event)
        self.appended += 1
        sink = self.sink
        if sink is not None:
            sink.write_record(_as_record(event).as_dict())
        return event

    def record(self, kind: str, subject: Any = None, **detail: Any) -> AuditRecord:
        """Append a derived record, causally linked to the current frame."""
        seq = next_seq()
        context = self.bus.cause_context()
        cause, trace = context if context is not None else (None, seq)
        return self._append(
            AuditRecord(seq, _time(), kind, subject, cause, trace, detail)
        )

    def event_child(
        self, event: Event, kind: str, subject: Any = None, **detail: Any
    ) -> AuditRecord:
        """Append a derived record caused directly by ``event``.

        Hot-path variant of :meth:`record` for call sites already holding
        the causing event: the stamps come straight from it, skipping the
        cause-stack lookup (and ``_append`` is inlined).
        """
        record = AuditRecord(
            next_seq(), _time(), kind, subject, event.seq, event.trace, detail
        )
        self.ring.append(record)
        self.appended += 1
        sink = self.sink
        if sink is not None:
            sink.write_record(record.as_dict())
        return record

    @contextmanager
    def operation(self, kind: str, subject: Any = None, **detail: Any):
        """A synthetic root (or nested) causal frame.

        Events emitted and records appended inside the ``with`` block are
        children of the operation's record — used by transaction abort
        (its ``attribute_restored`` restores), locked reads (their
        lock-inheritance acquisitions) and composite expansion.
        """
        record = self.record(kind, subject, **detail)
        self.bus.push_cause(record.seq, record.trace)
        try:
            yield record
        finally:
            self.bus.pop_cause()

    # -- inspection --------------------------------------------------------------

    def records(
        self,
        kind: Optional[str] = None,
        subject: Any = None,
        trace: Optional[int] = None,
    ) -> List[AuditRecord]:
        """Buffered records, oldest first, with optional filters.

        ``subject`` matches identity for objects, substring-of-``repr``
        for strings (the CLI filter).
        """
        result: List[AuditRecord] = []
        for item in self.ring:
            if kind is not None and item.kind != kind:
                continue
            if trace is not None and item.trace != trace:
                continue
            record = _as_record(item)
            if subject is not None and not _subject_matches(record, subject):
                continue
            result.append(record)
        return result

    def traces(self) -> List[int]:
        """Distinct trace ids in the ring, in first-appearance order."""
        seen: Dict[int, None] = {}
        for record in self.ring:
            seen.setdefault(record.trace, None)
        return list(seen)

    def cone(self, trace: int) -> Optional["PropagationCone"]:
        """The reconstructed cone of one trace, or ``None`` if unknown."""
        records = [_as_record(item) for item in self.ring if item.trace == trace]
        if not records:
            return None
        return PropagationCone(trace, records)

    def cones(self, kind: Optional[str] = None) -> List["PropagationCone"]:
        """One cone per trace in the ring, optionally only traces whose
        root record has ``kind``."""
        grouped: Dict[int, List[AuditRecord]] = {}
        for item in self.ring:
            grouped.setdefault(item.trace, []).append(_as_record(item))
        cones = [PropagationCone(trace, records) for trace, records in grouped.items()]
        if kind is not None:
            cones = [cone for cone in cones if cone.root.kind == kind]
        return cones

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        sink = self.sink
        if sink is not None and hasattr(sink, "close"):
            sink.close()
        self.sink = None

    def __len__(self) -> int:
        return len(self.ring)

    def __repr__(self) -> str:
        return f"<AuditLog buffered={len(self.ring)} appended={self.appended}>"


# ---------------------------------------------------------------------------
# propagation cones
# ---------------------------------------------------------------------------


class PropagationCone:
    """All audit records of one causal trace — one root mutation's reach.

    ``members()`` are the inheritors the ``attribute_updated`` fan-out
    reached (the batched ``propagation.fanout`` records the tap derives
    from :func:`~repro.core.inheritance.iter_propagation_depths`);
    ``depth`` is the deepest inheritance level reached, ``breadth`` the
    member count, ``by_rel_type`` the per-relationship-type membership and
    ``wall_time`` the span from the root's timestamp to the last record's.
    """

    def __init__(self, trace: int, records: List[AuditRecord]):
        self.trace = trace
        self.records = sorted(records, key=lambda record: record.seq)
        root = self.records[0]
        for record in self.records:
            if record.seq == trace:
                root = record
                break
        self.root = root
        #: Flattened (link, inheritor, depth) arrivals, in arrival order.
        self._reached = [
            item
            for record in self.records
            if record.kind == "propagation.fanout"
            for item in record.detail.get("reached", ())
        ]

    @property
    def breadth(self) -> int:
        return len(self._reached)

    @property
    def depth(self) -> int:
        """Deepest inheritance level reached (0: the update stayed local)."""
        return max((depth for _, _, depth in self._reached), default=0)

    @property
    def by_rel_type(self) -> Counter:
        return Counter(link.rel_type.name for link, _, _ in self._reached)

    def members(self) -> List[Any]:
        """The inheritor objects the fan-out reached, in arrival order."""
        return [inheritor for _, inheritor, _ in self._reached]

    @property
    def wall_time(self) -> float:
        stamps = [record.ts for record in self.records if record.ts]
        if len(stamps) < 2:
            return 0.0
        return max(stamps) - min(stamps)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "trace": self.trace,
            "root": self.root.as_dict(),
            "records": len(self.records),
            "breadth": self.breadth,
            "depth": self.depth,
            "by_rel_type": dict(self.by_rel_type),
            "members": [repr(member) for member in self.members()],
            "wall_time": self.wall_time,
        }

    def __len__(self) -> int:
        return len(self.records)

    def __repr__(self) -> str:
        return (
            f"<PropagationCone trace={self.trace} root={self.root.kind} "
            f"breadth={self.breadth} depth={self.depth}>"
        )


# ---------------------------------------------------------------------------
# value provenance (EXPLAIN for member reads)
# ---------------------------------------------------------------------------


class ProvenanceStep:
    """One level of the delegation chain.

    ``decisions`` lists every ``inheritor-in`` declaration of the level's
    type, in declaration order (the paper's diamond disambiguation), with
    its permeability verdict for the member, whether the link is bound,
    and whether the walk followed it (the first bound permeable link).
    ``via`` names the followed relationship type, ``None`` on the final
    (holder) step.
    """

    __slots__ = ("object", "via", "decisions")

    def __init__(self, obj: Any, via: Optional[str], decisions: List[Dict[str, Any]]):
        self.object = obj
        self.via = via
        self.decisions = decisions

    def as_dict(self) -> Dict[str, Any]:
        return {
            "object": repr(self.object),
            "via": self.via,
            "decisions": self.decisions,
        }


class ValueProvenance:
    """The answer of :func:`explain_value` — why a read returns its value."""

    __slots__ = (
        "object",
        "attribute",
        "value",
        "holder",
        "hops",
        "steps",
        "source",
        "served_by",
        "epochs",
        "indexes",
        "views",
    )

    def __init__(
        self,
        obj: Any,
        attribute: str,
        value: Any,
        holder: Any,
        hops: int,
        steps: List[ProvenanceStep],
        source: str,
        served_by: str,
        epochs: Dict[str, int],
        indexes: List[str],
        views: Optional[List[str]] = None,
    ):
        self.object = obj
        self.attribute = attribute
        self.value = value
        self.holder = holder
        self.hops = hops
        self.steps = steps
        self.source = source
        self.served_by = served_by
        self.epochs = epochs
        self.indexes = indexes
        #: Materialized views whose flattened row carries this reading,
        #: each tagged ``(fresh)`` or ``(stale)`` by comparing the view
        #: cell with the live value (see repro.query.views).
        self.views = views if views is not None else []

    def chain(self) -> List[Any]:
        """The delegation chain ``[object, …, holder]`` (provenance oracle:
        equals :func:`repro.core.resolution.naive_resolution_chain`)."""
        return [step.object for step in self.steps]

    def as_dict(self) -> Dict[str, Any]:
        return {
            "object": repr(self.object),
            "attribute": self.attribute,
            "value": _jsonable(self.value),
            "holder": repr(self.holder),
            "hops": self.hops,
            "source": self.source,
            "served_by": self.served_by,
            "epochs": dict(self.epochs),
            "indexes": list(self.indexes),
            "views": list(self.views),
            "path": [step.as_dict() for step in self.steps],
        }

    def render(self) -> str:
        """Terminal rendering for ``repro explain-value``."""
        lines = [
            f"{self.attribute!r} of {self.object!r} = {self.value!r}",
            f"  holder: {self.holder!r} ({self.hops} hop(s), "
            f"source: {self.source}, served by: {self.served_by})",
            f"  epochs: schema={self.epochs['schema']} "
            f"binding={self.epochs['binding']} "
            f"holder_mutation={self.epochs['holder_mutation']}",
        ]
        if self.indexes:
            lines.append(f"  tracked by: {', '.join(self.indexes)}")
        if self.views:
            lines.append(f"  materialized in: {', '.join(self.views)}")
        lines.append("  path:")
        for step in self.steps:
            arrow = f" --[{step.via}]-->" if step.via else "  (holder)"
            lines.append(f"    {step.object!r}{arrow}")
            for decision in step.decisions:
                verdict = (
                    "followed"
                    if decision["followed"]
                    else "bound but not permeable"
                    if decision["bound"] and not decision["permeable"]
                    else "permeable but unbound"
                    if decision["permeable"]
                    else "not permeable, unbound"
                )
                lines.append(
                    f"      {decision['rel_type']}: {verdict}"
                )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"<ValueProvenance {self.attribute!r} of {self.object!r} "
            f"holder={self.holder!r} hops={self.hops} source={self.source}>"
        )


def explain_value(obj, name: str) -> ValueProvenance:
    """Full provenance of ``obj.get_member(name)`` — without calling it.

    Walks the same chain the compiled plan dispatch walks (participant
    shadowing, the automatic ``surrogate``, first-bound-permeable-link in
    ``inheritor-in`` declaration order per level), recording every
    permeability decision.  Reports which epochs a memoised resolution is
    validated against, whether the read would be served by the holder memo
    or a fresh plan walk, and which value indexes track the reading.

    Raises exactly what the read would raise
    (:class:`~repro.errors.ObjectDeletedError`,
    :class:`~repro.errors.UnknownAttributeError`).  Needs no observability
    attached.
    """
    if obj._deleted:
        raise ObjectDeletedError(f"{obj!r} was deleted")
    schema = _resolution.schema_epoch()
    memo = obj._member_memo.get(name)
    served_by = (
        "holder-memo"
        if memo is not None
        and memo[0] == schema
        and memo[1] == obj._binding_epoch
        else "plan-walk"
    )

    steps: List[ProvenanceStep] = []
    current = obj
    hops = 0
    value: Any = None
    source = "unknown"
    while True:
        if current._deleted:
            raise ObjectDeletedError(f"{current!r} was deleted")
        participants = getattr(current, "_participants", None)
        if participants is not None and name in participants:
            raw = participants[name]
            value = list(raw) if isinstance(raw, tuple) else raw
            source = "participant"
            steps.append(ProvenanceStep(current, None, []))
            break
        if name == "surrogate":
            value = current.surrogate
            source = "surrogate"
            steps.append(ProvenanceStep(current, None, []))
            break
        decisions: List[Dict[str, Any]] = []
        chosen = None
        links = current._links_as_inheritor
        for rel_type in current.object_type.inheritor_in:
            permeable = rel_type.is_permeable(name)
            link = links.get(rel_type.name)
            followed = permeable and link is not None and chosen is None
            decisions.append(
                {
                    "rel_type": rel_type.name,
                    "permeable": permeable,
                    "bound": link is not None,
                    "followed": followed,
                }
            )
            if followed:
                chosen = link
        if chosen is not None:
            steps.append(
                ProvenanceStep(current, chosen.rel_type.name, decisions)
            )
            current = chosen.transmitter
            hops += 1
            continue
        # No bound permeable link: this level is the holder.
        steps.append(ProvenanceStep(current, None, decisions))
        local = current._local_value(name, _UNSET)
        if local is not _UNSET:
            value = local
            source = "local-attribute" if hops == 0 else "transmitter-attribute"
            break
        container = current._subclasses.get(name)
        if container is not None:
            value = container.members()
            source = "subclass"
            break
        rel_container = current._subrels.get(name)
        if rel_container is not None:
            value = rel_container.members()
            source = "subrel"
            break
        spec = current.object_type.effective_attribute(name)
        if spec is not None:
            value = spec.default if spec.has_default else None
            source = "default" if spec.has_default else "declared-unset"
            break
        if getattr(current.object_type, "allow_dynamic", False):
            raise UnknownAttributeError(
                f"{current!r} has no value for dynamic attribute {name!r}"
            )
        raise UnknownAttributeError(
            f"type {current.object_type.name!r} has no member {name!r}"
        )

    holder = steps[-1].object
    indexes: List[str] = []
    database = getattr(obj, "database", None)
    manager = getattr(database, "indexes", None)
    if manager is not None:
        for index in manager._by_attr.get(name, ()):
            if obj.surrogate in index._entries:
                indexes.append(
                    f"{index.source_kind}:{index.source_name}.{index.attr}"
                )
    views: List[str] = []
    view_manager = getattr(database, "views", None)
    if view_manager is not None:
        view = view_manager._views.get(obj.object_type)
        if view is not None and view.schema_epoch == schema:
            col = view.col_of.get(name)
            vrow = view.row_of.get(obj.surrogate)
            if col is not None and vrow is not None:
                cell = view.columns[col][vrow]
                try:
                    fresh = bool(cell == value)
                except Exception:  # noqa: BLE001 — incomparable: identity
                    fresh = cell is value
                views.append(
                    f"type:{obj.object_type.name}.{name} "
                    f"({'fresh' if fresh else 'stale'})"
                )
    return ValueProvenance(
        obj,
        name,
        value,
        holder,
        hops,
        steps,
        source,
        served_by,
        {
            "schema": schema,
            "binding": obj._binding_epoch,
            "holder_mutation": holder._mutation_epoch,
        },
        indexes,
        views,
    )


def iter_cone_records(log: AuditLog, trace: int) -> Iterator[AuditRecord]:
    """The records of one trace in sequence order (streaming helper)."""
    for record in sorted(log.records(trace=trace), key=lambda r: r.seq):
        yield record
