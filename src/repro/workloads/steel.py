"""Synthetic steel-construction workloads (§5 at scale).

Weight-carrying structures assembled from girders and plates by screwings;
all generated data satisfies the §5 constraints (bolt/nut diameters match,
bolt length = nut length + total bore length) so constraint-checking
benchmarks measure evaluation, not violation handling.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from ..ddl.paper import load_steel_schema
from ..engine.database import Database

__all__ = [
    "steel_database",
    "make_girder_interface",
    "make_plate_interface",
    "generate_structure",
]


def steel_database(name: str = "steel", record_events: bool = False) -> Database:
    """A fresh database with the paper's steel schema loaded."""
    db = Database(name, record_events=record_events)
    load_steel_schema(db.catalog)
    return db


def make_girder_interface(db: Database, rng: random.Random, n_bores: int = 2):
    height = rng.randrange(5, 20)
    width = rng.randrange(5, 20)
    girder = db.create_object(
        "GirderInterface",
        Length=rng.randrange(10, 100 * height * width - 1),
        Height=height,
        Width=width,
    )
    for _ in range(n_bores):
        girder.subclass("Bores").create(
            Diameter=rng.randrange(10, 16),
            Length=rng.randrange(5, 15),
            Position={"X": rng.randrange(100), "Y": rng.randrange(100)},
        )
    return girder


def make_plate_interface(db: Database, rng: random.Random, n_bores: int = 2):
    plate = db.create_object(
        "PlateInterface",
        Thickness=rng.randrange(5, 30),
        Area={"Length": rng.randrange(20, 200), "Width": rng.randrange(20, 200)},
    )
    for _ in range(n_bores):
        plate.subclass("Bores").create(
            Diameter=rng.randrange(10, 16),
            Length=rng.randrange(5, 15),
            Position={"X": rng.randrange(100), "Y": rng.randrange(100)},
        )
    return plate


def generate_structure(
    db: Database,
    n_girders: int = 2,
    n_plates: int = 2,
    n_screwings: int = 2,
    seed: int = 13,
) -> Tuple["DBObject", List["DBObject"]]:
    """A WeightCarrying_Structure with valid screwings.

    Each screwing joins one girder bore with one plate bore and carries a
    bolt/nut pair satisfying the §5 constraints.  Returns
    (structure, screwings).
    """
    rng = random.Random(seed)
    girder_interfaces = [make_girder_interface(db, rng) for _ in range(n_girders)]
    plate_interfaces = [make_plate_interface(db, rng) for _ in range(n_plates)]

    structure = db.create_object(
        "WeightCarrying_Structure",
        Designer="generator",
        Description=f"synthetic structure seed={seed}",
    )
    girder_slots = [
        structure.subclass("Girders").create(transmitter=g)
        for g in girder_interfaces
    ]
    plate_slots = [
        structure.subclass("Plates").create(transmitter=p)
        for p in plate_interfaces
    ]

    screwings = []
    for index in range(n_screwings):
        girder = girder_interfaces[index % len(girder_interfaces)]
        plate = plate_interfaces[index % len(plate_interfaces)]
        g_bore = girder.subclass("Bores").members()[index % 2]
        p_bore = plate.subclass("Bores").members()[index % 2]
        diameter = min(g_bore["Diameter"], p_bore["Diameter"]) - 1
        nut_length = rng.randrange(5, 12)
        bolt = db.create_object(
            "BoltType",
            Diameter=diameter,
            Length=nut_length + g_bore["Length"] + p_bore["Length"],
        )
        nut = db.create_object("NutType", Diameter=diameter, Length=nut_length)
        screwing = structure.subrel("Screwings").create(
            {"Bores": [g_bore, p_bore]}, Strength=rng.randrange(1, 10)
        )
        screwing.subclass("Bolt").create(transmitter=bolt)
        screwing.subclass("Nut").create(transmitter=nut)
        screwings.append(screwing)
    return structure, screwings
