"""E3 — Figure 3: one mechanism for two relationships.

The same inheritance-relationship type (AllOf_GateInterface) serves as

1. the *interface relationship* — composite implementation ← its interface;
2. the *component relationship* — component subobject ← component interface;

"the relationship AllOf_GateInterface appears twice" (§4.2).
"""

import pytest

from repro.composition import add_component
from repro.workloads import gate_database, make_implementation, make_interface


@pytest.fixture
def db():
    return gate_database("fig3")


class TestFigure3:
    def test_same_rel_type_in_both_roles(self, db):
        rel = db.catalog.inheritance_type("AllOf_GateInterface")

        composite_if = make_interface(db, length=40)
        composite = make_implementation(db, composite_if)
        component_if = make_interface(db, length=10)
        slot = add_component(composite, "SubGates", component_if,
                             GateLocation=(1, 1))

        interface_link = composite.link_for(rel)
        component_link = slot.link_for(rel)
        assert interface_link is not None and component_link is not None
        assert interface_link.rel_type is component_link.rel_type is rel
        assert interface_link.transmitter is composite_if
        assert component_link.transmitter is component_if

    def test_component_data_flows_into_composite(self, db):
        composite = make_implementation(db, make_interface(db, length=40))
        component_if = make_interface(db, length=10)
        slot = add_component(composite, "SubGates", component_if,
                             GateLocation=(2, 3))
        # §4.2: "the component transfers data into a subobject of the
        # composite object, and these data is visible for the composite
        # object as part of this subobject"
        subgates = composite["SubGates"]
        assert subgates[0] is slot
        assert subgates[0]["Length"] == 10
        assert len(subgates[0]["Pins"]) == 3

    def test_subobject_specialises_with_own_data(self, db):
        composite = make_implementation(db, make_interface(db))
        slot = add_component(
            composite, "SubGates", make_interface(db), GateLocation=(5, 6)
        )
        assert slot["GateLocation"].Y == 6
        slot.set_attribute("GateLocation", (7, 8))  # placement stays local
        assert slot["GateLocation"].X == 7

    def test_updates_flow_along_both_relationships(self, db):
        composite_if = make_interface(db, length=40)
        composite = make_implementation(db, composite_if)
        component_if = make_interface(db, length=10)
        slot = add_component(composite, "SubGates", component_if,
                             GateLocation=(0, 0))
        composite_if.set_attribute("Length", 44)  # interface relationship
        component_if.set_attribute("Length", 11)  # component relationship
        assert composite["Length"] == 44
        assert slot["Length"] == 11

    def test_different_rel_types_possible_too(self, db):
        # §4.2: "Of course it is also possible to use different
        # relationship types for relating the component subobject to the
        # component and the whole object to its interface."
        from repro.core import InheritanceRelationshipType

        narrow = InheritanceRelationshipType(
            "PinsOnly_GateInterface",
            db.catalog.object_type("GateInterface"),
            ["Pins"],
        )
        db.catalog.register(narrow)
        slot_type = db.catalog.object_type("GateImplementation.SubGates")
        slot_type.declare_inheritor_in(narrow)
        composite = make_implementation(db, make_interface(db))
        component_if = make_interface(db, length=10)
        slot = add_component(
            composite, "SubGates", component_if, rel_type=narrow,
            GateLocation=(0, 0),
        )
        assert len(slot["Pins"]) == 3
        # Length is not permeable through the narrow relationship; the slot
        # type still *declares* it via AllOf_GateInterface, so it reads as
        # unset rather than inherited.
        assert slot["Length"] is None
