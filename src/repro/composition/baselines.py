"""Baseline composition mechanisms the paper argues against (§2).

The paper discusses two alternatives to the inheritance relationship before
rejecting them:

1. **Copy composition** — "to define a local subobject in O into which C is
   copied".  Fast reads, but the composite is not informed of component
   updates (staleness) and the component's full internal structure becomes
   visible.
2. **View composition** — "only a view to the component is granted".
   Always fresh, but *everything* is visible; there is no selective
   permeability and no place to hang consistency bookkeeping.

Both are implemented here so the benchmarks (experiment E6) can quantify
the trade-offs the paper states qualitatively.  View composition is
realised as an inheritance relationship whose ``inheriting`` clause lists
*every* member of the transmitter type — which also demonstrates that the
paper's mechanism subsumes it.
"""

from __future__ import annotations

from typing import Any, Dict, List

from ..core import resolution as _resolution
from ..core.inheritance import InheritanceRelationshipType
from ..core.objects import DBObject, new_object
from ..core.objtype import TypeBase
from ..errors import SchemaError

__all__ = [
    "clone_object",
    "copy_component",
    "stale_members",
    "view_rel_type",
    "view_component",
]


def clone_object(source: DBObject, database=None) -> DBObject:
    """Deep-copy an object: local attributes, subobjects and local
    relationships (participants remapped into the copy).

    Inheritance links are *not* cloned — a copy is detached by definition;
    inherited values are **materialised** into the clone as local values,
    which is precisely what makes copies go stale.
    """
    database = database if database is not None else source.database
    target = new_object(source.object_type, database=database)
    mapping: Dict[Any, DBObject] = {}
    _copy_into(source, target, mapping)
    return target


def _copy_into(source: DBObject, target: DBObject, mapping: Dict[Any, DBObject]) -> None:
    mapping[source.surrogate] = target
    # Materialise every visible attribute (local or inherited) locally.
    for name in _resolution.plan_for(source.object_type).attribute_names:
        value = source.get_member(name)
        if value is not None:
            # The copy baseline materialises into brand-new objects; no
            # reader has memoised them, so no epoch bump is needed.
            target._attrs[name] = value  # lint: allow(REP601)
    for name in source.subclass_names():
        target_container = target._subclasses.get(name)
        if target_container is None:
            continue
        for member in source.get_member(name):
            copy = new_object(member.object_type, database=target.database)
            copy.parent = target
            copy._container = target_container
            target_container._members[copy.surrogate] = copy
            _copy_into(member, copy, mapping)
    for name in source.subrel_names():
        source_container = source.subrel(name)
        target_container = target._subrels.get(name)
        if target_container is None:
            continue
        for rel in source_container:
            participants = {}
            for role in rel.rel_type.participants:
                value = rel.participant(role)
                if isinstance(value, tuple):
                    participants[role] = [
                        mapping.get(p.surrogate, p) for p in value
                    ]
                else:
                    participants[role] = mapping.get(value.surrogate, value)
            copy_rel = target_container.create(participants)
            for attr, attr_value in rel.local_attributes().items():
                copy_rel._attrs[attr] = attr_value  # lint: allow(REP601) — fresh copy


def copy_component(
    composite: DBObject, subclass_name: str, component: DBObject, **own_attrs: Any
) -> DBObject:
    """Copy composition (§2 baseline): the component's data is *copied*
    into a fresh subobject of the composite.

    The subobject receives every visible attribute of the component as a
    local value plus copies of its subobjects; there is **no link**, so
    later component updates are invisible (see :func:`stale_members`).
    """
    container = composite.subclass(subclass_name)
    subobject = container.create(**own_attrs)
    mapping: Dict[Any, DBObject] = {}
    # Materialise every visible attribute of the component as a local value
    # of the subobject (stored directly: the copy baseline deliberately
    # bypasses the schema of the slot type, as a raw data copy would).
    for name in _resolution.plan_for(component.object_type).attribute_names:
        value = component.get_member(name)
        if value is not None:
            subobject._attrs[name] = value  # lint: allow(REP601) — fresh copy
    for name in component.subclass_names():
        target_container = subobject._subclasses.get(name)
        if target_container is None:
            continue
        for member in component.get_member(name):
            copy = new_object(member.object_type, database=subobject.database)
            copy.parent = subobject
            copy._container = target_container
            target_container._members[copy.surrogate] = copy
            _copy_into(member, copy, mapping)
    return subobject


def stale_members(copy: DBObject, component: DBObject) -> List[str]:
    """Attribute names whose copied value no longer matches the component.

    The §2 problem made measurable: after component updates, a copy-based
    composite holds outdated values until someone re-copies.
    """
    stale = []
    for name in _resolution.plan_for(component.object_type).attribute_names:
        if name not in copy._attrs:
            continue
        if copy._attrs[name] != component.get_member(name):
            stale.append(name)
    return stale


_VIEW_REL_CACHE: Dict[int, InheritanceRelationshipType] = {}


def view_rel_type(transmitter_type: TypeBase) -> InheritanceRelationshipType:
    """The all-members inheritance relationship for ``transmitter_type``.

    View composition = an inheritance relationship with *no* selectivity:
    ``inheriting`` lists every attribute, subclass and subrel of the
    transmitter type.  Cached per type.
    """
    cached = _VIEW_REL_CACHE.get(id(transmitter_type))
    if cached is not None:
        return cached
    members = (
        list(transmitter_type.effective_attributes())
        + list(transmitter_type.effective_subclasses())
        + list(transmitter_type.effective_subrels())
    )
    if not members:
        raise SchemaError(
            f"type {transmitter_type.name!r} has no members to view"
        )
    rel = InheritanceRelationshipType(
        f"ViewOf_{transmitter_type.name.replace('.', '_')}",
        transmitter_type=transmitter_type,
        inheriting=members,
        doc="View-composition baseline: the entire component is visible.",
    )
    _VIEW_REL_CACHE[id(transmitter_type)] = rel
    return rel


def view_component(
    composite: DBObject, subclass_name: str, component: DBObject, **own_attrs: Any
) -> DBObject:
    """View composition (§2 baseline): everything visible, always fresh."""
    container = composite.subclass(subclass_name)
    rel = view_rel_type(component.object_type)
    subobject = container.create(**own_attrs)
    from ..core.objects import bind

    bind(subobject, component, rel, declare=True)
    return subobject
