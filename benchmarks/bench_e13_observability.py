"""E13 — ablation: observability overhead on the hot paths.

The instrumentation contract: with ``observe=False`` (the default) the
engine pays one attribute load and a branch per instrumented site — within
noise of the uninstrumented baseline rows of E2.  With ``observe=True``
every transmitter update additionally walks its propagation fan-out, which
is the measurement the ROADMAP's scaling work needs.

Rows to compare:

* ``update_observe_off``  vs  E2's ``update_with_inheritance`` — noise;
* ``update_observe_on``   — the cost of measuring a fan-out of N;
* ``inherited_read_observe_{off,on}`` — one counter increment per hop.
"""

import pytest

from repro.workloads import gate_database, make_implementation, make_interface

from benchmarks import obs_hook

FANOUTS = [1, 10, 100]


def _setup(n_impls, observe):
    db = gate_database("e13-bench")
    if observe:
        db.enable_observability(tracing=False)
    iface = make_interface(db)
    for _ in range(n_impls):
        make_implementation(db, iface)
    return db, iface


class TestUpdateOverhead:
    @pytest.mark.parametrize("n_impls", FANOUTS)
    def test_update_observe_off(self, benchmark, n_impls):
        """Must match E2's update_with_inheritance within noise."""
        db, iface = _setup(n_impls, observe=False)
        counter = iter(range(10**9))

        def update():
            iface.set_attribute("Length", 10 + next(counter) % 50)

        benchmark(update)
        assert db.obs is None

    @pytest.mark.parametrize("n_impls", FANOUTS)
    def test_update_observe_on(self, benchmark, n_impls):
        """Measured updates pay the O(fan-out) propagation walk."""
        db, iface = _setup(n_impls, observe=True)
        counter = iter(range(10**9))

        def update():
            iface.set_attribute("Length", 10 + next(counter) % 50)

        benchmark(update)
        assert db.obs.metrics.value("propagation.updates") > 0
        obs_hook.collect(db, label=f"update_observe_on[{n_impls}]")


class TestReadOverhead:
    def test_inherited_read_observe_off(self, benchmark):
        db, iface = _setup(1, observe=False)
        impl = db.objects_of_type("GateImplementation")[0]
        benchmark(impl.get_member, "Length")

    def test_inherited_read_observe_on(self, benchmark):
        db, iface = _setup(1, observe=True)
        impl = db.objects_of_type("GateImplementation")[0]
        benchmark(impl.get_member, "Length")
        assert db.obs.metrics.value("reads.inherited") > 0
        obs_hook.collect(db, label="inherited_read_observe_on")


def register(suite):
    """repro-bench adapter (see :mod:`repro.obs.bench`)."""
    fanout = 10

    @suite.case(f"update_observe_off[{fanout}]")
    def dark_case():
        db, iface = _setup(fanout, observe=False)
        counter = iter(range(10**9))
        return lambda: iface.set_attribute("Length", 10 + next(counter) % 50)

    @suite.case(f"update_observe_on[{fanout}]")
    def observed_case():
        db, iface = _setup(fanout, observe=True)
        counter = iter(range(10**9))
        return lambda: iface.set_attribute("Length", 10 + next(counter) % 50)

    @suite.case("inherited_read_observe_off")
    def read_dark_case():
        db, iface = _setup(1, observe=False)
        impl = db.objects_of_type("GateImplementation")[0]
        return lambda: impl.get_member("Length")

    @suite.case("inherited_read_observe_on")
    def read_observed_case():
        db, iface = _setup(1, observe=True)
        impl = db.objects_of_type("GateImplementation")[0]
        return lambda: impl.get_member("Length")
