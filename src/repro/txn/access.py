"""Access control.

§6: *"these 'standard objects' usually are protected by access control
mechanisms preventing the normal user from updating them.  Thus, there
should be a tight connection between the access control manager and the
lock manager: if objects are to be locked implicitly by complex operations
the access control manager should be consulted to grant no lock which
allows more operations than the access control admits."*

Rights form a ladder NONE < READ < WRITE.  Rights can be granted per
object, per object type, or as a per-principal default; the most specific
grant wins.  :meth:`AccessControlManager.cap_mode` is the hook the lock
manager calls before implicit (expansion) locking.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..core.objects import DBObject
from ..core.objtype import TypeBase
from ..core.surrogate import Surrogate
from ..errors import AccessDeniedError
from .locks import LockMode

__all__ = ["Right", "AccessControlManager"]


class Right:
    """Access rights, ordered by privilege."""

    NONE = "none"
    READ = "read"
    WRITE = "write"

    _ORDER = {NONE: 0, READ: 1, WRITE: 2}

    @classmethod
    def includes(cls, granted: str, needed: str) -> bool:
        return cls._ORDER[granted] >= cls._ORDER[needed]

    @classmethod
    def validate(cls, right: str) -> str:
        if right not in cls._ORDER:
            raise AccessDeniedError(f"unknown right {right!r}")
        return right


class AccessControlManager:
    """Principal → rights on objects and types."""

    def __init__(self, default_right: str = Right.WRITE):
        #: Right assumed when no grant matches at all (open by default —
        #: a single-designer database needs no ceremony).
        self.default_right = Right.validate(default_right)
        self._object_rights: Dict[Tuple[str, Surrogate], str] = {}
        self._type_rights: Dict[Tuple[str, str], str] = {}
        self._principal_defaults: Dict[str, str] = {}

    # -- granting -------------------------------------------------------------

    def grant(self, principal: str, target, right: str) -> None:
        """Grant ``right`` on an object, a type, or (target=None) as the
        principal's default."""
        Right.validate(right)
        if target is None:
            self._principal_defaults[principal] = right
        elif isinstance(target, DBObject):
            self._object_rights[(principal, target.surrogate)] = right
        elif isinstance(target, TypeBase):
            self._type_rights[(principal, target.name)] = right
        else:
            raise AccessDeniedError(f"cannot grant on {target!r}")

    def protect_standard_object(self, obj: DBObject, everyone_reads: bool = True) -> None:
        """Mark an object as a protected standard part (§6): everybody may
        read it, nobody may write (grant WRITE explicitly to librarians)."""
        right = Right.READ if everyone_reads else Right.NONE
        self._object_rights[("*", obj.surrogate)] = right

    # -- checking --------------------------------------------------------------

    def allowed(self, principal: Optional[str], obj: DBObject) -> str:
        """The effective right of ``principal`` on ``obj``.

        Precedence: object grant (principal, then ``"*"``), type grant,
        principal default, manager default.  ``principal=None`` (no user
        attached) gets the manager default unless a ``"*"`` object grant
        restricts the object.
        """
        if principal is not None:
            specific = self._object_rights.get((principal, obj.surrogate))
            if specific is not None:
                return specific
        wildcard = self._object_rights.get(("*", obj.surrogate))
        if wildcard is not None:
            return wildcard
        if principal is not None:
            type_right = self._type_rights.get((principal, obj.object_type.name))
            if type_right is not None:
                return type_right
            principal_default = self._principal_defaults.get(principal)
            if principal_default is not None:
                return principal_default
        return self.default_right

    def check(self, principal: Optional[str], obj: DBObject, needed: str) -> None:
        granted = self.allowed(principal, obj)
        if not Right.includes(granted, needed):
            raise AccessDeniedError(
                f"principal {principal!r} holds {granted!r} on {obj!r}; "
                f"{needed!r} required"
            )

    def cap_mode(self, principal: Optional[str], obj: DBObject, mode: str) -> str:
        """Cap a requested lock mode to what access control admits (§6).

        X is downgraded to S for read-only principals; NONE raises.  This
        is the hook for implicit locking by complex operations (expansion).
        """
        granted = self.allowed(principal, obj)
        if granted == Right.NONE:
            raise AccessDeniedError(
                f"principal {principal!r} may not access {obj!r} at all"
            )
        if mode == LockMode.X and granted != Right.WRITE:
            return LockMode.S
        return mode
