"""Tests for design workspaces (repro.versions.workspace)."""

import pytest

from repro.errors import VersionError
from repro.versions import (
    StateGuard,
    VersionGraph,
    VersionState,
    Workspace,
    derive_version,
)
from repro.workloads import gate_database, make_interface


@pytest.fixture
def db():
    return gate_database("workspace")


@pytest.fixture
def guard(db):
    return StateGuard(db)


@pytest.fixture
def graph(db, guard):
    graph = VersionGraph(name="parts", guard=guard)
    base = make_interface(db, length=10)
    graph.add_version(base)
    graph.release(base)
    return graph


@pytest.fixture
def workspace(db):
    return Workspace(db, user="alice")


class TestCheckout:
    def test_checkout_clones(self, graph, workspace):
        base = graph.members()[0]
        copy = workspace.checkout(graph, base)
        assert copy["Length"] == 10
        assert copy.surrogate != base.surrogate
        assert workspace.is_checked_out(copy)

    def test_copy_is_editable_although_origin_released(self, graph, workspace):
        base = graph.members()[0]
        copy = workspace.checkout(graph, base)
        copy.set_attribute("Length", 11)  # the released origin stays safe
        assert base["Length"] == 10

    def test_checkout_of_non_member_rejected(self, db, graph, workspace):
        stranger = make_interface(db)
        with pytest.raises(VersionError):
            workspace.checkout(graph, stranger)

    def test_multiple_checkouts_tracked(self, graph, workspace):
        base = graph.members()[0]
        copies = [workspace.checkout(graph, base) for _ in range(3)]
        assert len(workspace) == 3
        assert set(workspace.checked_out()) == set(copies)


class TestCheckin:
    def test_checkin_creates_derived_version(self, graph, workspace):
        base = graph.members()[0]
        copy = workspace.checkout(graph, base)
        copy.set_attribute("Length", 12)
        result = workspace.checkin(copy)
        assert result.version is copy
        assert graph.base_of(copy) is base
        assert graph.state_of(copy) == VersionState.IN_DESIGN
        assert not workspace.is_checked_out(copy)
        assert [e.path for e in result.changes] == ["Length"]

    def test_unchanged_checkin_rejected(self, graph, workspace):
        base = graph.members()[0]
        copy = workspace.checkout(graph, base)
        with pytest.raises(VersionError):
            workspace.checkin(copy)
        assert workspace.is_checked_out(copy)  # still out

    def test_parallel_work_flagged(self, db, graph, workspace):
        base = graph.members()[0]
        copy = workspace.checkout(graph, base)
        copy.set_attribute("Length", 12)
        # Someone else derives from the origin while the copy is out.
        derive_version(graph, base)
        result = workspace.checkin(copy)
        assert result.parallel
        assert len(graph.derivatives_of(base)) == 2

    def test_sequential_checkin_not_parallel(self, graph, workspace):
        base = graph.members()[0]
        copy = workspace.checkout(graph, base)
        copy.set_attribute("Length", 12)
        assert not workspace.checkin(copy).parallel

    def test_checkin_unknown_copy_rejected(self, db, graph, workspace):
        with pytest.raises(VersionError):
            workspace.checkin(make_interface(db))


class TestAbandon:
    def test_abandon_deletes_copy(self, graph, workspace):
        base = graph.members()[0]
        copy = workspace.checkout(graph, base)
        pins = copy.subclass("Pins").members()
        workspace.abandon(copy)
        assert copy.deleted and all(p.deleted for p in pins)
        assert len(workspace) == 0
        assert not base.deleted

    def test_abandon_all(self, graph, workspace):
        base = graph.members()[0]
        for _ in range(3):
            workspace.checkout(graph, base)
        assert workspace.abandon_all() == 3
        assert len(workspace) == 0

    def test_workspace_repr(self, workspace):
        assert "alice" in repr(workspace)
