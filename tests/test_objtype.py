"""Unit tests for the type system (repro.core.objtype)."""

import pytest

from repro.core import (
    INTEGER,
    AttributeSpec,
    InheritanceRelationshipType,
    ObjectType,
    RelationshipType,
    SubclassSpec,
)
from repro.errors import SchemaError


class TestObjectTypeDefinition:
    def test_simple_type(self):
        t = ObjectType("Bolt", attributes={"Length": INTEGER, "Diameter": INTEGER})
        assert set(t.attributes) == {"Length", "Diameter"}
        assert not t.is_complex()

    def test_invalid_type_name(self):
        with pytest.raises(SchemaError):
            ObjectType("3bad")
        with pytest.raises(SchemaError):
            ObjectType("")

    def test_dotted_names_allowed_for_anonymous_subtypes(self):
        t = ObjectType("GateImplementation.SubGates")
        assert t.name == "GateImplementation.SubGates"

    def test_attribute_spec_passthrough(self):
        spec = AttributeSpec("Length", INTEGER, default=10)
        t = ObjectType("T", attributes={"Length": spec})
        assert t.attributes["Length"].default == 10

    def test_attribute_spec_name_mismatch(self):
        with pytest.raises(SchemaError):
            ObjectType("T", attributes={"Width": AttributeSpec("Length", INTEGER)})

    def test_reserved_attribute_name_rejected(self):
        with pytest.raises(SchemaError):
            ObjectType("T", attributes={"surrogate": INTEGER})

    def test_bad_default_fails_at_schema_time(self):
        with pytest.raises(SchemaError):
            ObjectType("T", attributes={"Length": AttributeSpec("Length", INTEGER, default="x")})

    def test_subclass_declaration(self, gates):
        assert gates.gate.subclass_specs["Pins"].element_type is gates.pin_type
        assert gates.gate.is_complex()

    def test_subclass_spec_name_mismatch(self, gates):
        with pytest.raises(SchemaError):
            ObjectType("T", subclasses={"A": SubclassSpec("B", gates.pin_type)})

    def test_subrel_with_where(self, gates):
        spec = gates.gate.subrel_specs["Wires"]
        assert spec.rel_type is gates.wire_type
        assert "Pin1" in spec.where_source

    def test_member_name_clash_rejected(self, gates):
        with pytest.raises(SchemaError):
            ObjectType(
                "T",
                attributes={"Pins": INTEGER},
                subclasses={"Pins": gates.pin_type},
            )

    def test_constraints_parsed(self, gates):
        assert len(gates.elementary_gate.constraints) == 2

    def test_member_kind(self, gates):
        assert gates.gate.member_kind("Length") == "attribute"
        assert gates.gate.member_kind("Pins") == "subclass"
        assert gates.gate.member_kind("Wires") == "subrel"
        assert gates.gate.member_kind("Nope") is None


class TestSubrelSpecBindingNames:
    def test_binding_names_cover_paper_spelling(self, gates):
        names = gates.gate.subrel_specs["Wires"].binding_names()
        # The paper writes "Wire.Pin1" although the subclass is "Wires".
        assert "Wires" in names and "Wire" in names and "WireType" in names

    def test_no_duplicate_names(self, gates):
        names = gates.gate.subrel_specs["Wires"].binding_names()
        assert len(names) == len(set(names))


class TestTypeLevelInheritance:
    def test_effective_attributes_include_inherited(self, gates):
        effective = gates.gate_implementation.effective_attributes()
        assert {"Length", "Width", "Function"} <= set(effective)

    def test_effective_subclasses_include_inherited(self, gates):
        effective = gates.gate_implementation.effective_subclasses()
        assert {"Pins", "SubGates"} <= set(effective)

    def test_inherited_member_names(self, gates):
        inherited = gates.gate_implementation.inherited_member_names()
        assert inherited == {"Length", "Width", "Pins"}

    def test_conforms_to_transmitter_type(self, gates):
        # GateImplementation is a subtype of GateInterface (§4.1).
        assert gates.gate_implementation.conforms_to(gates.gate_interface)
        assert not gates.gate_interface.conforms_to(gates.gate_implementation)

    def test_conforms_to_self_and_none(self, gates):
        assert gates.gate.conforms_to(gates.gate)
        assert gates.gate.conforms_to(None)

    def test_transitive_conformance_through_hierarchy(self, gates):
        # GateInterface_I -> GateInterface -> GateImplementation (§4.2).
        interface_i = ObjectType("GateInterface_I", subclasses={"Pins": gates.pin_type})
        all_of_i = InheritanceRelationshipType(
            "AllOf_GateInterface_I", interface_i, ["Pins"]
        )
        fresh_interface = ObjectType(
            "GateInterface2", attributes={"Length": INTEGER, "Width": INTEGER}
        )
        fresh_interface.declare_inheritor_in(all_of_i)
        rel = InheritanceRelationshipType(
            "AllOf_GateInterface2", fresh_interface, ["Length", "Width", "Pins"]
        )
        impl = ObjectType("Impl")
        impl.declare_inheritor_in(rel)
        assert impl.conforms_to(interface_i)
        assert impl.effective_subclass("Pins") is interface_i.subclass_specs["Pins"]

    def test_local_member_collision_with_inherited_rejected(self, gates):
        bad = ObjectType("Bad", attributes={"Length": INTEGER})
        with pytest.raises(SchemaError):
            bad.declare_inheritor_in(gates.all_of_gate_interface)

    def test_inheritance_cycle_rejected(self):
        a = ObjectType("A", attributes={"X": INTEGER})
        rel_a = InheritanceRelationshipType("AllOfA", a, ["X"])
        b = ObjectType("B", attributes={"Y": INTEGER})
        b.declare_inheritor_in(rel_a)
        rel_b = InheritanceRelationshipType("AllOfB", b, ["Y"])
        with pytest.raises(SchemaError):
            a.declare_inheritor_in(rel_b)

    def test_self_cycle_rejected(self):
        a = ObjectType("A", attributes={"X": INTEGER})
        rel = InheritanceRelationshipType("AllOfA", a, ["X"])
        with pytest.raises(SchemaError):
            a.declare_inheritor_in(rel)

    def test_redeclaration_is_idempotent(self, gates):
        before = len(gates.gate_implementation.inheritor_in)
        gates.gate_implementation.declare_inheritor_in(gates.all_of_gate_interface)
        assert len(gates.gate_implementation.inheritor_in) == before

    def test_diamond_resolution_order_is_declaration_order(self):
        t1 = ObjectType("T1", attributes={"X": INTEGER})
        t2 = ObjectType("T2", attributes={"X": INTEGER})
        rel1 = InheritanceRelationshipType("R1", t1, ["X"])
        rel2 = InheritanceRelationshipType("R2", t2, ["X"])
        sub = ObjectType("Sub")
        sub.declare_inheritor_in(rel1)
        sub.declare_inheritor_in(rel2)
        assert sub.effective_attribute("X") is t1.attributes["X"]


class TestRelationshipTypeBasics:
    def test_roles(self, gates):
        assert set(gates.wire_type.participants) == {"Pin1", "Pin2"}

    def test_empty_relates_rejected(self):
        with pytest.raises(SchemaError):
            RelationshipType("R", relates={})

    def test_role_member_clash_rejected(self, gates):
        with pytest.raises(SchemaError):
            RelationshipType(
                "R",
                relates={"Strength": gates.pin_type},
                attributes={"Strength": INTEGER},
            )

    def test_untyped_role(self):
        r = RelationshipType("R", relates={"Thing": None})
        assert r.participants["Thing"].object_type is None
        assert r.participants["Thing"].describe() == "object"

    def test_set_valued_role(self, gates):
        r = RelationshipType("R", relates={"Bores": (gates.pin_type, True)})
        assert r.participants["Bores"].many
        assert "set-of" in r.participants["Bores"].describe()


class TestInheritanceRelationshipType:
    def test_permeability(self, gates):
        rel = gates.all_of_gate_interface
        assert rel.is_permeable("Length") and rel.is_permeable("Pins")
        assert not rel.is_permeable("Function")

    def test_empty_inheriting_rejected(self, gates):
        with pytest.raises(SchemaError):
            InheritanceRelationshipType("R", gates.gate_interface, [])

    def test_unknown_inheriting_member_rejected(self, gates):
        with pytest.raises(SchemaError):
            InheritanceRelationshipType("R", gates.gate_interface, ["Nope"])

    def test_duplicate_inheriting_member_rejected(self, gates):
        with pytest.raises(SchemaError):
            InheritanceRelationshipType(
                "R", gates.gate_interface, ["Length", "Length"]
            )

    def test_transmitter_may_pass_on_inherited_members(self, gates):
        # GateInterface itself inherits Pins from GateInterface_I, and
        # AllOf_GateInterface may list Pins (§4.2).
        interface_i = ObjectType("GateInterface_I", subclasses={"Pins": gates.pin_type})
        all_of_i = InheritanceRelationshipType("AllOf_I", interface_i, ["Pins"])
        iface = ObjectType("Iface", attributes={"Length": INTEGER})
        iface.declare_inheritor_in(all_of_i)
        rel = InheritanceRelationshipType("AllOf_Iface", iface, ["Length", "Pins"])
        assert rel.is_permeable("Pins")

    def test_permeable_specs(self, gates):
        rel = gates.all_of_gate_interface
        assert set(rel.permeable_attributes()) == {"Length", "Width"}
        assert set(rel.permeable_subclasses()) == {"Pins"}

    def test_inheritor_type_restriction(self, gates):
        restricted = InheritanceRelationshipType(
            "OnlyImpls",
            gates.gate_interface,
            ["Length"],
            inheritor_type=gates.gate_implementation,
        )
        assert restricted.accepts_inheritor(gates.gate_implementation)
        assert not restricted.accepts_inheritor(gates.pin_type)
        # Declaring an inheritor type registers the inheritor-in clause.
        assert restricted in gates.gate_implementation.inheritor_in

    def test_string_transmitter_rejected(self):
        with pytest.raises(SchemaError):
            InheritanceRelationshipType("R", "NotAType", ["X"])

    def test_known_inheritor_types_tracked(self, gates):
        assert (
            gates.gate_implementation
            in gates.all_of_gate_interface.known_inheritor_types
        )
