"""Transactions & concurrency (§6): scoped locks, lock inheritance,
expansion locking, access control."""

from .access import AccessControlManager, Right
from .groups import TransactionGroup
from .lock_inheritance import (
    expansion_lock_plan,
    inherited_lock_plan,
    note_inherited_conflict,
)
from .locks import WAIT_BUCKETS, LockEntry, LockMode, LockTable, scopes_overlap
from .prediction import PredictedConflict, potential_conflicts, relation_between
from .transactions import Transaction, TransactionManager

__all__ = [
    "AccessControlManager",
    "Right",
    "TransactionGroup",
    "expansion_lock_plan",
    "inherited_lock_plan",
    "note_inherited_conflict",
    "WAIT_BUCKETS",
    "LockEntry",
    "LockMode",
    "LockTable",
    "scopes_overlap",
    "PredictedConflict",
    "potential_conflicts",
    "relation_between",
    "Transaction",
    "TransactionManager",
]
