"""Property-based DDL round-trips: random schemas survive
unparse → parse → build (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import INTEGER, STRING
from repro.core.inheritance import InheritanceRelationshipType
from repro.core.objtype import ObjectType
from repro.ddl import load_schema
from repro.ddl.unparse import unparse_catalog
from repro.engine import Catalog
from tests.test_ddl_unparse import assert_catalogs_equivalent

type_names = st.from_regex(r"T[a-z0-9]{1,6}", fullmatch=True)
member_names = st.from_regex(r"[A-Z][a-z0-9]{1,6}", fullmatch=True)


@st.composite
def random_schemas(draw):
    """A random but well-formed catalog:

    * 1–4 simple object types with integer/string attributes;
    * optionally an inheritance relationship over the first type and a
      subtype declaring inheritor-in;
    * optionally a complex type with a subclass of the first type.
    """
    catalog = Catalog()
    names = draw(st.lists(type_names, min_size=1, max_size=4, unique=True))
    types = []
    for name in names:
        member_list = draw(
            st.lists(member_names, min_size=1, max_size=4, unique=True)
        )
        attributes = {
            member: draw(st.sampled_from([INTEGER, STRING]))
            for member in member_list
        }
        object_type = ObjectType(name, attributes=attributes)
        catalog.register(object_type)
        types.append(object_type)

    base = types[0]
    if draw(st.booleans()) and base.attributes:
        inheriting = draw(
            st.lists(
                st.sampled_from(sorted(base.attributes)),
                min_size=1,
                max_size=len(base.attributes),
                unique=True,
            )
        )
        rel = InheritanceRelationshipType(
            f"AllOf_{base.name}", base, inheriting
        )
        catalog.register(rel)
        sub_members = draw(
            st.lists(
                member_names.filter(lambda m: m not in base.attributes),
                min_size=0,
                max_size=2,
                unique=True,
            )
        )
        subtype = ObjectType(
            f"Sub{base.name}",
            attributes={m: INTEGER for m in sub_members},
        )
        subtype.declare_inheritor_in(rel)
        catalog.register(subtype)

    if draw(st.booleans()):
        container_name = draw(
            member_names.filter(lambda m: True)
        )
        complex_type = ObjectType(
            f"Cx{base.name}", subclasses={container_name: base}
        )
        catalog.register(complex_type)
    return catalog


class TestRandomSchemaRoundTrips:
    @settings(max_examples=60, deadline=None)
    @given(random_schemas())
    def test_unparse_parse_preserves_structure(self, catalog):
        text = unparse_catalog(catalog)
        rebuilt = load_schema(text)
        assert_catalogs_equivalent(catalog, rebuilt)

    @settings(max_examples=30, deadline=None)
    @given(random_schemas())
    def test_double_round_trip_stable(self, catalog):
        once_text = unparse_catalog(catalog)
        once = load_schema(once_text)
        twice_text = unparse_catalog(once)
        assert once_text == twice_text
