"""Tests for transactions, scoped locks, lock inheritance and access
control (repro.txn)."""

import pytest

from repro.composition import add_component
from repro.core.surrogate import Surrogate
from repro.ddl.paper import load_gate_schema
from repro.engine import Database
from repro.errors import AccessDeniedError, LockConflictError, TransactionError
from repro.txn import (
    AccessControlManager,
    LockMode,
    LockTable,
    Right,
    TransactionManager,
    inherited_lock_plan,
    scopes_overlap,
)


@pytest.fixture
def db():
    db = Database("txn")
    load_gate_schema(db.catalog)
    return db


@pytest.fixture
def tm(db):
    return TransactionManager(db)


def make_interface(db, length=10):
    iface = db.create_object("GateInterface", Length=length, Width=5)
    iface.subclass("Pins").create(InOut="IN")
    iface.subclass("Pins").create(InOut="OUT")
    return iface


def make_composite(db):
    own_if = make_interface(db, 40)
    impl = db.create_object("GateImplementation", transmitter=own_if)
    component_if = make_interface(db, 10)
    sub = add_component(impl, "SubGates", component_if, GateLocation=(0, 0))
    return impl, own_if, component_if, sub


class TestLockTable:
    def test_shared_locks_compatible(self):
        table = LockTable()
        s = Surrogate(1)
        table.acquire(1, s, LockMode.S)
        table.acquire(2, s, LockMode.S)
        assert len(table.holders(s)) == 2

    def test_exclusive_conflicts(self):
        table = LockTable()
        s = Surrogate(1)
        table.acquire(1, s, LockMode.X)
        with pytest.raises(LockConflictError) as excinfo:
            table.acquire(2, s, LockMode.S)
        assert excinfo.value.holder == 1

    def test_scoped_locks_disjoint_no_conflict(self):
        table = LockTable()
        s = Surrogate(1)
        table.acquire(1, s, LockMode.X, frozenset({"Length"}))
        table.acquire(2, s, LockMode.X, frozenset({"Width"}))  # disjoint
        with pytest.raises(LockConflictError):
            table.acquire(3, s, LockMode.S, frozenset({"Length"}))

    def test_whole_object_scope_overlaps_everything(self):
        assert scopes_overlap(None, frozenset({"A"}))
        assert scopes_overlap(None, None)
        assert not scopes_overlap(frozenset({"A"}), frozenset({"B"}))

    def test_reacquire_merges_scope_and_mode(self):
        table = LockTable()
        s = Surrogate(1)
        table.acquire(1, s, LockMode.S, frozenset({"A"}))
        entry = table.acquire(1, s, LockMode.X, frozenset({"B"}))
        assert entry.mode == LockMode.X
        assert entry.scope == frozenset({"A", "B"})
        assert len(table.holders(s)) == 1

    def test_upgrade_blocked_by_other_reader(self):
        table = LockTable()
        s = Surrogate(1)
        table.acquire(1, s, LockMode.S)
        table.acquire(2, s, LockMode.S)
        with pytest.raises(LockConflictError):
            table.acquire(1, s, LockMode.X)

    def test_release_all(self):
        table = LockTable()
        table.acquire(1, Surrogate(1), LockMode.S)
        table.acquire(1, Surrogate(2), LockMode.X)
        assert table.release_all(1) == 2
        assert not table.is_locked(Surrogate(1))
        assert table.lock_count() == 0


class TestLockInheritance:
    def test_plan_covers_visible_part(self, db):
        impl, own_if, component_if, sub = make_composite(db)
        plan = inherited_lock_plan(impl)
        targets = {obj.surrogate: scope for obj, scope in plan}
        assert own_if.surrogate in targets
        assert targets[own_if.surrogate] == frozenset({"Length", "Width", "Pins"})

    def test_plan_scoped_by_members(self, db):
        impl, own_if, *_ = make_composite(db)
        plan = inherited_lock_plan(impl, frozenset({"Length"}))
        assert plan == [(own_if, frozenset({"Length"}))]

    def test_plan_empty_for_local_members(self, db):
        impl, *_ = make_composite(db)
        assert inherited_lock_plan(impl, frozenset({"Function"})) == []

    def test_plan_climbs_interface_hierarchy(self, db):
        top = db.create_object("GateInterface_I")
        top.subclass("Pins").create(InOut="IN")
        iface = db.create_object("GateInterface", transmitter=top, Length=1, Width=1)
        impl = db.create_object("GateImplementation", transmitter=iface)
        plan = inherited_lock_plan(impl, frozenset({"Pins"}))
        locked = {obj.surrogate: scope for obj, scope in plan}
        assert iface.surrogate in locked and top.surrogate in locked
        assert locked[top.surrogate] == frozenset({"Pins"})

    def test_composite_reader_blocks_component_writer(self, db, tm):
        impl, own_if, component_if, sub = make_composite(db)
        reader = tm.begin()
        reader.read(sub)  # touches inherited data of the component
        writer = tm.begin()
        with pytest.raises(LockConflictError):
            writer.set(component_if, "Length", 99)
        reader.commit()
        writer.set(component_if, "Length", 99)
        writer.commit()
        assert component_if["Length"] == 99

    def test_component_writer_blocks_composite_reader(self, db, tm):
        impl, own_if, component_if, sub = make_composite(db)
        writer = tm.begin()
        writer.write(component_if, {"Length"})
        reader = tm.begin()
        with pytest.raises(LockConflictError):
            reader.read(sub, {"Length"})

    def test_invisible_member_write_does_not_conflict(self, db, tm):
        # TimeBehavior is not permeable through AllOf_GateInterface, and
        # the interface does not even declare it — but a scoped write on a
        # *different* member of the component must not block the reader.
        impl, own_if, component_if, sub = make_composite(db)
        reader = tm.begin()
        reader.read(sub, {"Length"})
        writer = tm.begin()
        writer.write(component_if, {"Width"})  # disjoint from Length
        reader.commit()
        writer.commit()


class TestTransactions:
    def test_commit_releases_locks(self, db, tm):
        iface = make_interface(db)
        txn = tm.begin()
        txn.write(iface)
        txn.commit()
        assert not tm.lock_table.is_locked(iface.surrogate)
        assert tm.active_transactions() == []

    def test_abort_undoes_updates(self, db, tm):
        iface = make_interface(db, length=10)
        txn = tm.begin()
        txn.set(iface, "Length", 99)
        txn.set(iface, "Width", 77)
        assert iface["Length"] == 99
        txn.abort()
        assert iface["Length"] == 10 and iface["Width"] == 5

    def test_abort_undoes_first_time_set(self, db):
        fresh_db = Database("txn2")
        load_gate_schema(fresh_db.catalog)
        tm2 = TransactionManager(fresh_db)
        iface = fresh_db.create_object("GateInterface")
        txn = tm2.begin()
        txn.set(iface, "Length", 1)
        txn.abort()
        assert iface["Length"] is None

    def test_context_manager_commit_and_abort(self, db, tm):
        iface = make_interface(db, length=10)
        with tm.begin() as txn:
            txn.set(iface, "Length", 20)
        assert iface["Length"] == 20
        with pytest.raises(RuntimeError):
            with tm.begin() as txn:
                txn.set(iface, "Length", 30)
                raise RuntimeError("boom")
        assert iface["Length"] == 20  # rolled back

    def test_operations_after_commit_rejected(self, db, tm):
        iface = make_interface(db)
        txn = tm.begin()
        txn.commit()
        with pytest.raises(TransactionError):
            txn.read(iface)
        with pytest.raises(TransactionError):
            txn.commit()

    def test_locked_get(self, db, tm):
        iface = make_interface(db, length=10)
        txn = tm.begin()
        assert txn.get(iface, "Length") == 10
        holders = tm.lock_table.holders(iface.surrogate)
        assert holders and holders[0].scope == frozenset({"Length"})

    def test_two_writers_conflict(self, db, tm):
        iface = make_interface(db)
        a, b = tm.begin(), tm.begin()
        a.write(iface)
        with pytest.raises(LockConflictError):
            b.write(iface)

    def test_abort_all(self, db, tm):
        iface = make_interface(db, length=10)
        txn = tm.begin()
        txn.set(iface, "Length", 50)
        tm.abort_all()
        assert iface["Length"] == 10 and tm.active_transactions() == []


class TestDesignTransactions:
    def test_persistent_locks_survive_commit(self, db, tm):
        iface = make_interface(db)
        design = tm.begin(persistent=True)
        design.write(iface)
        design.commit()
        assert tm.lock_table.is_locked(iface.surrogate)
        other = tm.begin()
        with pytest.raises(LockConflictError):
            other.read(iface)
        design.checkin()
        other.read(iface)

    def test_checkin_requires_completion(self, db, tm):
        design = tm.begin(persistent=True)
        with pytest.raises(TransactionError):
            design.checkin()
        design.commit()
        design.checkin()
        with pytest.raises(TransactionError):
            design.checkin()

    def test_checkin_on_plain_transaction_rejected(self, db, tm):
        txn = tm.begin()
        txn.commit()
        with pytest.raises(TransactionError):
            txn.checkin()


class TestExpansionLocking:
    def test_expansion_locks_whole_hierarchy(self, db, tm):
        impl, own_if, component_if, sub = make_composite(db)
        txn = tm.begin()
        locked = txn.lock_expansion(impl)
        assert locked >= 4  # impl, sub, pins…, interfaces
        assert tm.lock_table.is_locked(component_if.surrogate)
        # Component visible part is read-locked: a writer on Length fails…
        writer = tm.begin()
        with pytest.raises(LockConflictError):
            writer.write(component_if, {"Length"})

    def test_expansion_components_not_write_locked(self, db, tm):
        impl, own_if, component_if, sub = make_composite(db)
        txn = tm.begin()
        txn.lock_expansion(impl, mode=LockMode.X)
        holders = tm.lock_table.holders(component_if.surrogate)
        assert all(entry.mode == LockMode.S for entry in holders)
        own = tm.lock_table.holders(impl.surrogate)
        assert own[0].mode == LockMode.X


class TestAccessControl:
    def test_rights_ladder(self):
        assert Right.includes(Right.WRITE, Right.READ)
        assert not Right.includes(Right.READ, Right.WRITE)
        with pytest.raises(AccessDeniedError):
            Right.validate("root")

    def test_object_grant_precedence(self, db):
        acm = AccessControlManager(default_right=Right.READ)
        iface = make_interface(db)
        acm.grant("alice", iface, Right.WRITE)
        assert acm.allowed("alice", iface) == Right.WRITE
        assert acm.allowed("bob", iface) == Right.READ

    def test_type_and_principal_defaults(self, db):
        acm = AccessControlManager(default_right=Right.NONE)
        iface = make_interface(db)
        acm.grant("carol", db.catalog.type("GateInterface"), Right.READ)
        assert acm.allowed("carol", iface) == Right.READ
        acm.grant("carol", None, Right.WRITE)
        # Type grant is more specific than the principal default.
        assert acm.allowed("carol", iface) == Right.READ

    def test_protected_standard_object(self, db, tm):
        acm = AccessControlManager()
        tm.access = acm
        bolt_if = make_interface(db)
        acm.protect_standard_object(bolt_if)
        txn = tm.begin(user="designer")
        txn.read(bolt_if)  # reading is fine
        with pytest.raises(AccessDeniedError):
            txn.set(bolt_if, "Length", 1)

    def test_cap_mode_downgrades_for_readers(self, db):
        acm = AccessControlManager()
        iface = make_interface(db)
        acm.protect_standard_object(iface)
        assert acm.cap_mode("u", iface, LockMode.X) == LockMode.S
        acm.grant("owner", iface, Right.WRITE)
        assert acm.cap_mode("owner", iface, LockMode.X) == LockMode.X

    def test_cap_mode_none_raises(self, db):
        acm = AccessControlManager()
        iface = make_interface(db)
        acm.protect_standard_object(iface, everyone_reads=False)
        with pytest.raises(AccessDeniedError):
            acm.cap_mode("u", iface, LockMode.S)

    def test_expansion_capped_by_access_control(self, db):
        # The §6 scenario: expanding a chip write-locks the own design but
        # the customized standard cells stay read-locked.
        acm = AccessControlManager()
        tm = TransactionManager(db, access=acm)
        impl, own_if, component_if, sub = make_composite(db)
        acm.protect_standard_object(component_if)
        acm.protect_standard_object(own_if)
        txn = tm.begin(user="designer")
        txn.lock_expansion(impl, mode=LockMode.X)
        for entry in tm.lock_table.holders(component_if.surrogate):
            assert entry.mode == LockMode.S

    def test_read_denied_without_rights(self, db):
        acm = AccessControlManager(default_right=Right.NONE)
        tm = TransactionManager(db, access=acm)
        iface = make_interface(db)
        txn = tm.begin(user="intruder")
        with pytest.raises(AccessDeniedError):
            txn.read(iface)
