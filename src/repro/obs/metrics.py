"""Counters, gauges and fixed-bucket histograms — no external dependencies.

The registry is name-keyed and flat (dotted names by convention, e.g.
``propagation.fanout``); instruments are created on first use::

    registry.counter("locks.acquired").inc()
    registry.histogram("propagation.fanout").observe(12)

:meth:`MetricsRegistry.as_dict` exposes everything as plain dicts with a
stable shape (documented in ``docs/observability.md`` and wrapped into the
``repro.metrics/1`` JSON schema by :mod:`repro.obs.report`).
"""

from __future__ import annotations

from bisect import bisect_left
from random import Random
from zlib import crc32
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "FANOUT_BUCKETS",
    "RESERVOIR_SIZE",
]

#: Reservoir capacity per histogram: percentiles are exact up to this many
#: observations and an unbiased uniform sample beyond (Algorithm R).
RESERVOIR_SIZE = 512

#: General-purpose size buckets (powers-of-ten-ish).
DEFAULT_BUCKETS: Tuple[float, ...] = (1, 2, 5, 10, 20, 50, 100, 200, 500, 1000)
#: Buckets for propagation fan-out — 0 is its own bucket because "update
#: with no inheritors" is the interesting base case.
FANOUT_BUCKETS: Tuple[float, ...] = (0, 1, 2, 5, 10, 20, 50, 100, 500)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def __repr__(self) -> str:
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, n: float = 1) -> None:
        self.value += n

    def dec(self, n: float = 1) -> None:
        self.value -= n

    def __repr__(self) -> str:
        return f"<Gauge {self.name}={self.value}>"


class Histogram:
    """A fixed-bucket histogram with count/sum/min/max and percentiles.

    ``bounds`` are inclusive upper bucket edges; observations above the
    last edge land in the overflow (``+Inf``) bucket.  Alongside the
    buckets, a bounded reservoir (Algorithm R, :data:`RESERVOIR_SIZE`
    values) keeps a uniform sample of every observation, so
    :meth:`percentile` is **exact** until the reservoir fills and an
    unbiased estimate after.  The reservoir's RNG is seeded from the
    metric name, so runs are reproducible.
    """

    __slots__ = ("name", "bounds", "bucket_counts", "overflow",
                 "count", "sum", "min", "max", "reservoir", "_rng")

    def __init__(self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS):
        if not bounds:
            raise ValueError(f"histogram {name!r}: bounds must be non-empty")
        self.name = name
        self.bounds: Tuple[float, ...] = tuple(sorted(bounds))
        self.bucket_counts: List[int] = [0] * len(self.bounds)
        self.overflow = 0
        self.count = 0
        self.sum: float = 0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.reservoir: List[float] = []
        self._rng = Random(crc32(name.encode()))

    def observe(self, value: float) -> None:
        index = bisect_left(self.bounds, value)
        if index < len(self.bounds):
            self.bucket_counts[index] += 1
        else:
            self.overflow += 1
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        reservoir = self.reservoir
        if len(reservoir) < RESERVOIR_SIZE:
            reservoir.append(value)
        else:
            # Algorithm R: keep each of the `count` observations seen so
            # far in the sample with probability RESERVOIR_SIZE / count.
            slot = self._rng.randrange(self.count)
            if slot < RESERVOIR_SIZE:
                reservoir[slot] = value

    @property
    def mean(self) -> Optional[float]:
        return self.sum / self.count if self.count else None

    def percentile(self, p: float) -> Optional[float]:
        """The ``p``-th percentile (0–100), linearly interpolated.

        Exact while at most :data:`RESERVOIR_SIZE` values were observed;
        estimated from the uniform reservoir sample afterwards.  ``None``
        without observations.
        """
        if not 0 <= p <= 100:
            raise ValueError(f"percentile {p!r} out of range [0, 100]")
        sample = sorted(self.reservoir)
        if not sample:
            return None
        if len(sample) == 1:
            return sample[0]
        rank = (len(sample) - 1) * p / 100.0
        low = int(rank)
        frac = rank - low
        if frac == 0:
            return sample[low]
        return sample[low] + (sample[low + 1] - sample[low]) * frac

    def as_dict(self) -> Dict[str, Any]:
        return {
            "buckets": [
                {"le": bound, "count": count}
                for bound, count in zip(self.bounds, self.bucket_counts)
            ],
            "inf": self.overflow,
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "sampled": len(self.reservoir),
        }

    def __repr__(self) -> str:
        return f"<Histogram {self.name} count={self.count} mean={self.mean}>"


class MetricsRegistry:
    """All instruments of one observed database, by name."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def _check_free(self, name: str, kind: str) -> None:
        for other_kind, table in (
            ("counter", self._counters),
            ("gauge", self._gauges),
            ("histogram", self._histograms),
        ):
            if other_kind != kind and name in table:
                raise ValueError(
                    f"metric {name!r} already registered as a {other_kind}"
                )

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            self._check_free(name, "counter")
            counter = self._counters[name] = Counter(name)
        return counter

    def gauge(self, name: str) -> Gauge:
        gauge = self._gauges.get(name)
        if gauge is None:
            self._check_free(name, "gauge")
            gauge = self._gauges[name] = Gauge(name)
        return gauge

    def histogram(
        self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            self._check_free(name, "histogram")
            histogram = self._histograms[name] = Histogram(name, bounds)
        return histogram

    def value(self, name: str, default: Any = None) -> Any:
        """The current value of a counter or gauge (convenience)."""
        if name in self._counters:
            return self._counters[name].value
        if name in self._gauges:
            return self._gauges[name].value
        return default

    def as_dict(self) -> Dict[str, Any]:
        """Plain-dict export: the payload of the ``repro.metrics/1`` schema."""
        return {
            "counters": {
                name: counter.value
                for name, counter in sorted(self._counters.items())
            },
            "gauges": {
                name: gauge.value for name, gauge in sorted(self._gauges.items())
            },
            "histograms": {
                name: histogram.as_dict()
                for name, histogram in sorted(self._histograms.items())
            },
        }

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    def __repr__(self) -> str:
        return (
            f"<MetricsRegistry counters={len(self._counters)} "
            f"gauges={len(self._gauges)} histograms={len(self._histograms)}>"
        )
