"""Property-based tests on core model invariants (hypothesis).

Invariants:

* value-inheritance transparency: a bound inheritor always reads exactly
  the transmitter's current value for every permeable member;
* the lock table never grants two conflicting locks;
* version-graph derivation stays acyclic and history lengths are bounded;
* persistence round-trips arbitrary generated instance populations.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    INTEGER,
    InheritanceRelationshipType,
    ObjectType,
    new_object,
)
from repro.core.surrogate import Surrogate
from repro.errors import LockConflictError
from repro.txn.locks import LockMode, LockTable, scopes_overlap
from repro.versions import VersionGraph

# ---------------------------------------------------------------------------
# value-inheritance transparency
# ---------------------------------------------------------------------------

attribute_names = [f"A{i}" for i in range(6)]


@st.composite
def inheritance_setups(draw):
    permeable = draw(
        st.lists(st.sampled_from(attribute_names), min_size=1, max_size=6, unique=True)
    )
    updates = draw(
        st.lists(
            st.tuples(st.sampled_from(attribute_names), st.integers(-100, 100)),
            max_size=20,
        )
    )
    return permeable, updates


class TestInheritanceTransparency:
    @given(inheritance_setups())
    def test_inheritor_always_sees_current_transmitter_values(self, setup):
        permeable, updates = setup
        transmitter_type = ObjectType(
            "T", attributes={name: INTEGER for name in attribute_names}
        )
        rel = InheritanceRelationshipType("R", transmitter_type, permeable)
        inheritor_type = ObjectType("I")
        inheritor_type.declare_inheritor_in(rel)

        transmitter = new_object(transmitter_type)
        inheritor = new_object(inheritor_type, transmitter=transmitter)
        for name, value in updates:
            transmitter.set_attribute(name, value)
            for member in permeable:
                assert inheritor[member] == transmitter[member]

    @given(inheritance_setups())
    def test_unbinding_severs_visibility(self, setup):
        permeable, updates = setup
        transmitter_type = ObjectType(
            "T", attributes={name: INTEGER for name in attribute_names}
        )
        rel = InheritanceRelationshipType("R", transmitter_type, permeable)
        inheritor_type = ObjectType("I")
        inheritor_type.declare_inheritor_in(rel)
        transmitter = new_object(transmitter_type)
        inheritor = new_object(inheritor_type, transmitter=transmitter)
        for name, value in updates:
            transmitter.set_attribute(name, value)
        inheritor.link_for(rel).unbind()
        for member in permeable:
            assert inheritor[member] is None


# ---------------------------------------------------------------------------
# lock-table safety
# ---------------------------------------------------------------------------

lock_requests = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=4),        # txn id
        st.integers(min_value=1, max_value=3),        # object id
        st.sampled_from([LockMode.S, LockMode.X]),    # mode
        st.one_of(                                     # scope
            st.none(),
            st.frozensets(st.sampled_from(["a", "b", "c"]), min_size=1, max_size=3),
        ),
    ),
    max_size=25,
)


class TestLockTableSafety:
    @given(lock_requests)
    def test_never_two_conflicting_grants(self, requests):
        table = LockTable()
        for txn_id, obj_id, mode, scope in requests:
            try:
                table.acquire(txn_id, Surrogate(obj_id), mode, scope)
            except LockConflictError:
                pass
            # Invariant: all granted entries on each object are pairwise
            # compatible across transactions.
            for oid in {1, 2, 3}:
                entries = table.holders(Surrogate(oid))
                for i, first in enumerate(entries):
                    for second in entries[i + 1:]:
                        if first.txn_id == second.txn_id:
                            continue
                        conflicting = (
                            not (first.mode == "S" and second.mode == "S")
                            and scopes_overlap(first.scope, second.scope)
                        )
                        assert not conflicting

    @given(lock_requests)
    def test_release_all_removes_everything(self, requests):
        table = LockTable()
        for txn_id, obj_id, mode, scope in requests:
            try:
                table.acquire(txn_id, Surrogate(obj_id), mode, scope)
            except LockConflictError:
                pass
        for txn_id in (1, 2, 3, 4):
            table.release_all(txn_id)
        assert table.lock_count() == 0


# ---------------------------------------------------------------------------
# version graphs
# ---------------------------------------------------------------------------

derivation_scripts = st.lists(
    st.integers(min_value=0, max_value=10**6), min_size=1, max_size=30
)


class TestVersionGraphInvariants:
    @given(derivation_scripts)
    def test_histories_acyclic_and_bounded(self, script):
        graph = VersionGraph(name="prop")
        holder_type = ObjectType("V", attributes={"N": INTEGER})
        members = []
        rng = random.Random(42)
        for value in script:
            version = new_object(holder_type, N=value)
            base = members[rng.randrange(len(members))] if members else None
            graph.add_version(version, derived_from=base)
            members.append(version)
        for member in members:
            history = graph.history_of(member)
            assert history[-1] is member
            assert len(history) <= len(members)
            assert len({v.surrogate for v in history}) == len(history)  # acyclic
        assert len(graph.roots()) >= 1
        assert sum(len(graph.derivatives_of(m)) for m in members) == len(members) - len(
            graph.roots()
        )


# ---------------------------------------------------------------------------
# persistence round-trips
# ---------------------------------------------------------------------------

populations = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=100),   # Length
        st.integers(min_value=0, max_value=100),   # Width
        st.integers(min_value=0, max_value=3),     # implementations
        st.integers(min_value=0, max_value=3),     # pins
    ),
    max_size=6,
)


class TestPersistenceRoundTrip:
    @settings(max_examples=25, deadline=None)
    @given(populations)
    def test_generated_databases_round_trip(self, population):
        from repro.engine import dump_image, load_image
        from tests.conftest import build_gate_database

        db = build_gate_database("prop")
        for length, width, n_impls, n_pins in population:
            iface = db.create_object(
                "GateInterface", class_name="Interfaces", Length=length, Width=width
            )
            for i in range(n_pins):
                iface.subclass("Pins").create(InOut="IN" if i % 2 else "OUT")
            for _ in range(n_impls):
                db.create_object(
                    "GateImplementation",
                    class_name="Implementations",
                    transmitter=iface,
                )
        image = dump_image(db)
        fresh = build_gate_database("prop")
        load_image(image, fresh)
        assert fresh.count() == db.count()
        for obj in db.objects():
            twin = fresh.get(obj.surrogate)
            assert twin is not None
            assert twin.object_type.name == obj.object_type.name
            for name in obj.object_type.effective_attributes():
                assert twin[name] == obj[name]
