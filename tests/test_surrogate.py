"""Unit tests for surrogate identity (repro.core.surrogate)."""

import threading

import pytest

from repro.core.surrogate import Surrogate, SurrogateGenerator


class TestSurrogate:
    def test_equality_by_value_and_space(self):
        assert Surrogate(1, "a") == Surrogate(1, "a")
        assert Surrogate(1, "a") != Surrogate(1, "b")
        assert Surrogate(1, "a") != Surrogate(2, "a")

    def test_hashable_usable_in_sets(self):
        assert len({Surrogate(1), Surrogate(1), Surrogate(2)}) == 2

    def test_ordering_follows_value(self):
        assert Surrogate(1, "a") < Surrogate(2, "a")

    def test_str_rendering(self):
        assert str(Surrogate(7, "demo")) == "@demo:7"

    def test_frozen(self):
        surrogate = Surrogate(1)
        with pytest.raises(Exception):
            surrogate.value = 2  # type: ignore[misc]


class TestSurrogateGenerator:
    def test_fresh_is_unique_and_increasing(self):
        gen = SurrogateGenerator("t")
        issued = [gen.fresh() for _ in range(100)]
        assert len(set(issued)) == 100
        assert issued == sorted(issued)

    def test_space_propagates(self):
        gen = SurrogateGenerator("mydb")
        assert gen.fresh().space == "mydb"

    def test_fresh_many(self):
        gen = SurrogateGenerator()
        assert len(list(gen.fresh_many(5))) == 5
        with pytest.raises(ValueError):
            list(gen.fresh_many(-1))

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            SurrogateGenerator(start=-1)

    def test_advance_past_prevents_reuse_after_load(self):
        gen = SurrogateGenerator()
        gen.advance_past(500)
        assert gen.fresh().value == 501

    def test_advance_past_never_goes_backward(self):
        gen = SurrogateGenerator(start=1000)
        first = gen.fresh()
        gen.advance_past(5)
        assert gen.fresh().value > first.value

    def test_last_issued_tracks(self):
        gen = SurrogateGenerator(start=10)
        gen.fresh()
        assert gen.last_issued == 10

    def test_thread_safety_no_duplicates(self):
        gen = SurrogateGenerator()
        issued = []
        lock = threading.Lock()

        def worker():
            local = [gen.fresh() for _ in range(200)]
            with lock:
                issued.extend(local)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(set(issued)) == 1600
