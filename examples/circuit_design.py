#!/usr/bin/env python3
"""Circuit design: the paper's chip-design scenario end to end.

Covers Figures 1–4:
* the Flip-Flop complex object (elementary gates + cross-coupled wires);
* an interface hierarchy (GateInterface_I → GateInterface);
* a composite gate built from *interface components*, wired through the
  restricted Wire subrelationship;
* configuration queries: components-of, where-used, bill of materials.

Run:  python examples/circuit_design.py
"""

from repro.composition import (
    add_component,
    bill_of_materials,
    components_of,
    configuration,
    expand,
    where_used,
)
from repro.workloads import (
    gate_database,
    make_flipflop,
    make_implementation,
    make_interface,
)


def figure1_flipflop(db) -> None:
    print("== Figure 1: the Flip-Flop complex object ==")
    ff, subgates = make_flipflop(db)
    print(f"flip-flop: {len(ff['Pins'])} external pins, "
          f"{len(ff['SubGates'])} NAND subgates, {len(ff['Wires'])} wires")
    ff.check_constraints(deep=True)
    print("all §3 constraints hold (2 IN + 1 OUT per elementary gate)")


def figure2_interface_hierarchy(db) -> None:
    print("\n== §4.2: interface hierarchy ==")
    # The super-interface fixes the pins; versions differ in expansion.
    pins_only = db.create_object("GateInterface_I")
    for direction, y in (("IN", 0), ("IN", 2), ("OUT", 1)):
        pins_only.subclass("Pins").create(InOut=direction, PinLocation=(0, y))
    compact = db.create_object(
        "GateInterface", transmitter=pins_only, Length=8, Width=4
    )
    roomy = db.create_object(
        "GateInterface", transmitter=pins_only, Length=20, Width=10
    )
    print(f"two interface versions share {len(compact['Pins'])} pins, "
          f"expansions {compact['Length']}x{compact['Width']} vs "
          f"{roomy['Length']}x{roomy['Width']}")
    implementation = make_implementation(db, compact)
    print(f"implementation inherits through two levels: "
          f"pins={len(implementation['Pins'])}, length={implementation['Length']}")


def figure4_composite(db) -> None:
    print("\n== Figure 4: composite gate from interface components ==")
    nand_if = make_interface(db, length=10, width=5, n_in=2, n_out=1)
    xor_if = make_interface(db, length=40, width=20, n_in=2, n_out=1)
    xor_impl = make_implementation(db, xor_if)

    slots = [
        add_component(xor_impl, "SubGates", nand_if, GateLocation=(10 * i, 0))
        for i in range(4)  # XOR from 4 NANDs
    ]

    def pins(obj, direction):
        return [p for p in obj.get_member("Pins") if p["InOut"] == direction]

    wires = xor_impl.subrel("Wire")
    a, b = pins(xor_if, "IN")
    out = pins(xor_if, "OUT")[0]
    wires.create({"Pin1": a, "Pin2": pins(slots[0], "IN")[0]})
    wires.create({"Pin1": b, "Pin2": pins(slots[0], "IN")[1]})
    wires.create({"Pin1": pins(slots[3], "OUT")[0], "Pin2": out})

    print(f"XOR uses {len(components_of(xor_impl))} components "
          f"(all the same NAND interface)")
    print(f"where-used of the NAND interface: "
          f"{[str(u.surrogate) for u in where_used(nand_if)]}")
    print(f"bill of materials: {dict(bill_of_materials(xor_impl))}")

    expansion = expand(xor_impl)
    print(f"expansion touches {len(expansion)} objects "
          f"(composite tree + visible component parts)")

    # Component update propagates into every slot of the composite.
    nand_if.set_attribute("Length", 11)
    assert all(slot["Length"] == 11 for slot in slots)
    print("component interface update visible in all 4 slots")

    tree = configuration(xor_impl)
    print(f"configuration tree: {tree.size()} nodes, "
          f"{len(tree.leaves())} leaves")


def main() -> None:
    db = gate_database("circuit-design")
    figure1_flipflop(db)
    figure2_interface_hierarchy(db)
    figure4_composite(db)
    print(f"\ndatabase holds {db.count()} objects; done.")


if __name__ == "__main__":
    main()
