"""Synthetic workload generators for the gate and steel domains."""

from .gates import (
    gate_database,
    generate_component_tree,
    generate_composite,
    generate_library,
    make_flipflop,
    make_implementation,
    make_interface,
)
from .steel import (
    generate_structure,
    make_girder_interface,
    make_plate_interface,
    steel_database,
)

__all__ = [
    "gate_database",
    "generate_component_tree",
    "generate_composite",
    "generate_library",
    "make_flipflop",
    "make_implementation",
    "make_interface",
    "generate_structure",
    "make_girder_interface",
    "make_plate_interface",
    "steel_database",
]
