"""Three-way merge of parallel version alternatives.

§6: version management must "support the parallel development of
alternatives" — and parallel alternatives eventually converge.  The merge
implemented here is the classic three-way scheme over the structural diffs
of :mod:`repro.versions.diff`:

* start from a copy of the *left* alternative;
* apply every *right* change that does not collide with a left change;
* report collisions (both sides changed the same path to different values)
  and structural divergences (both sides resized the same subclass) as
  :class:`MergeConflict` records for the designer to resolve manually —
  the paper's position that adaptation "has to be done manually by a user"
  applies to merges just as much.

The merged object is registered in the version graph derived from the left
parent, with the right parent recorded as a merge parent
(:meth:`VersionGraph.merge_parents_of` exposes it for history display).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..composition.baselines import clone_object
from ..core.objects import DBObject
from ..errors import VersionError
from .diff import DiffEntry, diff_versions
from .graph import VersionGraph
from .states import VersionState

__all__ = ["MergeConflict", "MergeResult", "merge_versions"]

_SEGMENT = re.compile(r"([A-Za-z_][A-Za-z0-9_]*)(?:\[(\d+)\])?")


@dataclass(frozen=True)
class MergeConflict:
    """One place both alternatives changed incompatibly."""

    path: str
    kind: str  # 'attribute' | 'structure'
    base: Any
    left: Any
    right: Any

    def __str__(self) -> str:  # pragma: no cover - trivial
        return (
            f"{self.path}: base {self.base!r}, left {self.left!r}, "
            f"right {self.right!r}"
        )


@dataclass
class MergeResult:
    """Outcome of a merge: the new version plus unresolved conflicts."""

    merged: DBObject
    conflicts: List[MergeConflict]
    applied_from_right: List[DiffEntry]

    @property
    def clean(self) -> bool:
        return not self.conflicts


def _navigate(obj: DBObject, path: str) -> Tuple[Optional[DBObject], str]:
    """Resolve a diff path like ``Pins[1].PinLocation`` to (owner, attr)."""
    parts = path.split(".")
    current: Optional[DBObject] = obj
    for part in parts[:-1]:
        match = _SEGMENT.fullmatch(part)
        if match is None or current is None:
            return None, parts[-1]
        name, index = match.group(1), match.group(2)
        members = current.subclass(name).members()
        position = int(index) if index is not None else 0
        if position >= len(members):
            return None, parts[-1]
        current = members[position]
    return current, parts[-1]


def merge_versions(
    graph: VersionGraph,
    base: DBObject,
    left: DBObject,
    right: DBObject,
    database=None,
    state: str = VersionState.IN_DESIGN,
) -> MergeResult:
    """Merge two alternatives derived from a common base.

    All three versions must be members of ``graph`` and ``base`` must be an
    ancestor of both alternatives.  Returns the merged version (already in
    the graph) and the conflicts needing manual resolution — conflicted
    paths keep the *left* value in the merged object.
    """
    for version in (base, left, right):
        if version not in graph:
            raise VersionError(f"{version!r} is not a member of the graph")
    if not graph.is_ancestor(base, left) or not graph.is_ancestor(base, right):
        raise VersionError(f"{base!r} is not a common ancestor of both alternatives")

    left_diff: Dict[str, DiffEntry] = {
        entry.path: entry for entry in diff_versions(base, left)
    }
    right_diff: Dict[str, DiffEntry] = {
        entry.path: entry for entry in diff_versions(base, right)
    }

    merged = clone_object(left, database=database or left.database)
    conflicts: List[MergeConflict] = []
    applied: List[DiffEntry] = []

    for path, entry in right_diff.items():
        left_entry = left_diff.get(path)
        if left_entry is not None:
            if left_entry.new == entry.new:
                continue  # both sides agree
            conflicts.append(
                MergeConflict(
                    path,
                    "attribute" if entry.kind == "attribute" else "structure",
                    base=entry.old,
                    left=left_entry.new,
                    right=entry.new,
                )
            )
            continue
        if entry.kind == "size":
            # The right side restructured a subclass the left side left
            # alone; member identity across versions is not tracked, so
            # structural imports need a designer.
            conflicts.append(
                MergeConflict(path, "structure", entry.old, entry.old, entry.new)
            )
            continue
        owner, attribute = _navigate(merged, path)
        if owner is None:
            conflicts.append(
                MergeConflict(path, "structure", entry.old, None, entry.new)
            )
            continue
        owner._attrs[attribute] = entry.new
        owner._mutation_epoch += 1
        # Direct _attrs write (the state guard would veto set_attribute on
        # released versions); value indexes listen for the restore event.
        owner._emit("attribute_restored", attribute=attribute)
        applied.append(entry)

    graph.derive(left, merged, state=state)
    graph.record_merge(merged, right)
    return MergeResult(merged, conflicts, applied)
