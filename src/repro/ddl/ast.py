"""AST of the schema-definition language."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

__all__ = [
    "DomainAst",
    "DomainRef",
    "EnumLiteral",
    "RecordLiteral",
    "ConstructorAst",
    "AttributeDecl",
    "AnonymousTypeBody",
    "SubclassDecl",
    "SubrelDecl",
    "ParticipantDecl",
    "DomainDecl",
    "ObjTypeDecl",
    "RelTypeDecl",
    "InherRelTypeDecl",
    "Declaration",
    "Schema",
]


# -- domain expressions -------------------------------------------------------

@dataclass(frozen=True)
class DomainRef:
    """A named domain reference: ``integer``, ``Point``, ``I/O`` …"""

    name: str


@dataclass(frozen=True)
class EnumLiteral:
    """``(AND, OR, NOR, NAND)`` — an inline enumeration domain."""

    labels: Tuple[str, ...]


@dataclass(frozen=True)
class RecordLiteral:
    """``(X, Y: integer)`` or ``record: Length, Width: integer;`` —
    an inline record domain.  Fields: ((names…), domain) groups."""

    fields: Tuple[Tuple[Tuple[str, ...], "DomainAst"], ...]


@dataclass(frozen=True)
class ConstructorAst:
    """``set-of D`` / ``list-of D`` / ``matrix-of D``."""

    constructor: str  # 'set-of' | 'list-of' | 'matrix-of'
    element: "DomainAst"


DomainAst = Union[DomainRef, EnumLiteral, RecordLiteral, ConstructorAst]


# -- member declarations --------------------------------------------------------

@dataclass(frozen=True)
class AttributeDecl:
    """``Length, Width: integer;`` — one attribute group."""

    names: Tuple[str, ...]
    domain: DomainAst
    #: 1-based source line of the group, when parsed from DDL text.
    line: Optional[int] = None


@dataclass
class AnonymousTypeBody:
    """Inline body of a subclass entry (§4.2 SubGates, §5 Girders):

    ``SubGates: inheritor-in: AllOf_GateInterface; attributes: …``
    """

    inheritor_in: List[str] = field(default_factory=list)
    attributes: List[AttributeDecl] = field(default_factory=list)
    subclasses: List["SubclassDecl"] = field(default_factory=list)
    constraints: str = ""


@dataclass
class SubclassDecl:
    """One entry of ``types-of-subclasses``.

    Either a named element type (``Pins: PinType``) or an anonymous inline
    body (``SubGates: inheritor-in: …; attributes: …``).
    """

    name: str
    type_name: Optional[str] = None
    body: Optional[AnonymousTypeBody] = None
    line: Optional[int] = None


@dataclass(frozen=True)
class SubrelDecl:
    """One entry of ``types-of-subrels`` (alias ``connections``):
    ``Wires: WireType where <expr>;``"""

    name: str
    rel_type_name: str
    where_source: str = ""
    line: Optional[int] = None


@dataclass(frozen=True)
class ParticipantDecl:
    """One role group of a ``relates:`` clause.

    ``Pin1, Pin2: object-of-type PinType;`` — ``type_name=None`` encodes a
    plain ``object`` role; ``many`` marks ``set-of object-of-type``.
    """

    names: Tuple[str, ...]
    type_name: Optional[str]
    many: bool = False
    line: Optional[int] = None


# -- top-level declarations --------------------------------------------------------

@dataclass(frozen=True)
class DomainDecl:
    """``domain Name = <domain>;`` (including record … end-domain)."""

    name: str
    domain: DomainAst
    line: Optional[int] = None


@dataclass
class ObjTypeDecl:
    name: str
    inheritor_in: List[str] = field(default_factory=list)
    attributes: List[AttributeDecl] = field(default_factory=list)
    subclasses: List[SubclassDecl] = field(default_factory=list)
    subrels: List[SubrelDecl] = field(default_factory=list)
    constraints: str = ""
    end_name: str = ""
    line: Optional[int] = None


@dataclass
class RelTypeDecl:
    name: str
    relates: List[ParticipantDecl] = field(default_factory=list)
    attributes: List[AttributeDecl] = field(default_factory=list)
    subclasses: List[SubclassDecl] = field(default_factory=list)
    subrels: List[SubrelDecl] = field(default_factory=list)
    constraints: str = ""
    end_name: str = ""
    line: Optional[int] = None


@dataclass
class InherRelTypeDecl:
    name: str
    transmitter_type: str = ""
    inheritor_type: Optional[str] = None  # None == plain `object`
    inheriting: List[str] = field(default_factory=list)
    attributes: List[AttributeDecl] = field(default_factory=list)
    subclasses: List[SubclassDecl] = field(default_factory=list)
    constraints: str = ""
    end_name: str = ""
    line: Optional[int] = None


Declaration = Union[DomainDecl, ObjTypeDecl, RelTypeDecl, InherRelTypeDecl]


@dataclass
class Schema:
    """A parsed schema: declarations in source order, plus parser notes
    (e.g. mismatched ``end`` names — the paper has several)."""

    declarations: List[Declaration] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
