"""Trigger mechanism for semi-automatic consistency maintenance.

§4.1: *"In connection with trigger mechanism (which are not dealt with in
this paper) these informations can be used for building mechanisms for
semi-automatical corrections of consistency violations."*  The paper defers
the mechanism; this module supplies the minimal one its consistency story
needs: named triggers on the database's event bus, with a condition and an
action, plus a ready-made factory for the adaptation workflow
(:func:`auto_adapt_trigger`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from ..engine.events import Event
from ..errors import ReproError

__all__ = ["Trigger", "TriggerRegistry", "auto_adapt_trigger"]

Condition = Callable[[Event], bool]
Action = Callable[[Event], None]


@dataclass
class Trigger:
    """A named (event kind, condition, action) rule."""

    name: str
    kind: str
    action: Action
    condition: Optional[Condition] = None
    enabled: bool = True
    fired: int = 0

    def matches(self, event: Event) -> bool:
        if not self.enabled:
            return False
        if self.condition is None:
            return True
        return bool(self.condition(event))


class TriggerRegistry:
    """The triggers of one database."""

    def __init__(self, database):
        self.database = database
        self._triggers: Dict[str, Trigger] = {}
        self._subscription = database.events.subscribe("*", self._dispatch)

    def register(
        self,
        name: str,
        kind: str,
        action: Action,
        condition: Optional[Condition] = None,
    ) -> Trigger:
        """Define a trigger; names are unique."""
        if name in self._triggers:
            raise ReproError(f"trigger {name!r} already registered")
        trigger = Trigger(name=name, kind=kind, action=action, condition=condition)
        self._triggers[name] = trigger
        return trigger

    def remove(self, name: str) -> None:
        self._triggers.pop(name, None)

    def get(self, name: str) -> Trigger:
        try:
            return self._triggers[name]
        except KeyError:
            raise ReproError(f"unknown trigger {name!r}") from None

    def enable(self, name: str) -> None:
        self.get(name).enabled = True

    def disable(self, name: str) -> None:
        self.get(name).enabled = False

    def _dispatch(self, event: Event) -> None:
        for trigger in list(self._triggers.values()):
            if trigger.kind not in (event.kind, "*"):
                continue
            if trigger.matches(event):
                trigger.fired += 1
                trigger.action(event)

    def __len__(self) -> int:
        return len(self._triggers)

    def detach(self) -> None:
        self.database.events.unsubscribe(self._subscription)


def auto_adapt_trigger(
    registry: TriggerRegistry,
    tracker,
    corrector: Callable[[Any], bool],
    name: str = "auto-adapt",
) -> Trigger:
    """The semi-automatic correction pattern of §4.1.

    After every transmitter update, run ``corrector(record)`` on each fresh
    pending :class:`~repro.consistency.adaptation.AdaptationRecord`; when
    the corrector returns True the record is acknowledged automatically,
    otherwise it stays on the user's manual worklist.
    """

    def action(event: Event) -> None:
        for record in tracker.all_pending():
            if corrector(record):
                record.acknowledged = True

    return registry.register(
        name,
        "attribute_updated",
        action,
        condition=lambda event: bool(event.subject.inheritor_links),
    )
