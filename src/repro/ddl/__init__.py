"""Schema DDL: the paper's own type-definition syntax, executable.

>>> from repro.ddl import load_schema
>>> catalog = load_schema('''
...     domain I2 = (LOW, HIGH);
...     obj-type Probe =
...         attributes:
...             Level: I2;
...     end Probe;
... ''')
>>> catalog.object_type("Probe").attributes["Level"].domain.labels
('LOW', 'HIGH')
"""

from .ast import Schema
from .builder import SchemaBuilder, load_schema
from .lexer import tokenize_ddl
from .parser import parse_schema_source

__all__ = ["Schema", "SchemaBuilder", "load_schema", "tokenize_ddl", "parse_schema_source"]
