"""Conflict prediction from explicit relationships (§6).

*"The transaction manager should be able to exploit the more powerful
modelling features of advanced object models.  For instance, the explicitly
defined relationships between objects can be used to identify potential
conflicts (two update transactions are working on objects which are related
to each other)."*

Given the object sets two transactions work on, :func:`potential_conflicts`
lists the pairs that are *related* — through value inheritance (one
transmits data the other sees), through an explicit relationship object,
or through common membership in one complex object — before any lock is
requested.  Design sessions use this to warn early instead of colliding
hours later.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Set, Tuple

from ..core.objects import DBObject, InheritanceLink
from ..core.surrogate import Surrogate
from ..engine.query import root_of

__all__ = ["PredictedConflict", "relation_between", "potential_conflicts"]


@dataclass(frozen=True)
class PredictedConflict:
    """One pair of related objects two transactions both touch."""

    left: DBObject
    right: DBObject
    kind: str  # 'same-object' | 'value-inheritance' | 'relationship' | 'same-complex-object'
    detail: str

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.left!r} ~ {self.right!r}: {self.kind} ({self.detail})"


def _inheritance_path(source: DBObject, target: DBObject) -> bool:
    """True when ``target`` transitively inherits values from ``source``."""
    seen: Set[Surrogate] = set()
    stack = [source]
    while stack:
        current = stack.pop()
        for link in current.inheritor_links:
            inheritor = link.inheritor
            if inheritor.surrogate == target.surrogate:
                return True
            if inheritor.surrogate not in seen:
                seen.add(inheritor.surrogate)
                stack.append(inheritor)
    return False


def relation_between(a: DBObject, b: DBObject) -> Optional[Tuple[str, str]]:
    """The strongest relation between two objects, if any.

    Returns ``(kind, detail)`` or None.  Checked in order: identity, value
    inheritance (either direction, transitive), a shared relationship
    object, membership in the same complex object.
    """
    if a.surrogate == b.surrogate:
        return "same-object", "identical"
    if _inheritance_path(a, b):
        return "value-inheritance", f"{b!r} inherits from {a!r}"
    if _inheritance_path(b, a):
        return "value-inheritance", f"{a!r} inherits from {b!r}"
    for rel in a._participating:
        if isinstance(rel, InheritanceLink):
            continue
        if rel.deleted:
            continue
        if any(
            p.surrogate == b.surrogate for p in rel.participant_objects()
        ):
            return "relationship", f"both participate in {rel.rel_type.name}"
    if not a.deleted and not b.deleted:
        root_a, root_b = root_of(a), root_of(b)
        if root_a.surrogate == root_b.surrogate:
            return "same-complex-object", f"both inside {root_a!r}"
    return None


def potential_conflicts(
    objects_a: Iterable[DBObject],
    objects_b: Iterable[DBObject],
) -> List[PredictedConflict]:
    """Related pairs across two working sets — the §6 early warning.

    Pairs are reported once each; the check is symmetric in substance but
    keeps the (a, b) orientation of the arguments.
    """
    list_a = list(objects_a)
    list_b = list(objects_b)
    found: List[PredictedConflict] = []
    seen: Set[Tuple[Surrogate, Surrogate]] = set()
    for a in list_a:
        for b in list_b:
            key = (a.surrogate, b.surrogate)
            if key in seen:
                continue
            seen.add(key)
            relation = relation_between(a, b)
            if relation is not None:
                kind, detail = relation
                found.append(PredictedConflict(a, b, kind, detail))
    return found
