"""Version derivation and structural diffs.

§6 situates versions in the design workflow: new versions are *derived*
from old ones, alternatives develop in parallel, and "management of
changes" needs to see what actually changed between two versions.

* :func:`derive_version` — the standard derive step: deep-copy a base
  version (its local data, subobjects and local relationships), register
  the copy in the version graph as derived from the base, and return it
  ready for modification;
* :func:`diff_versions` — a structural diff of two versions: attribute
  changes and subclass growth/shrinkage, with index-paired recursive
  subobject comparison (clones preserve creation order, so index pairing
  matches corresponding subobjects).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List

from ..composition.baselines import clone_object
from ..core.objects import DBObject
from .graph import VersionGraph
from .states import VersionState

__all__ = ["DiffEntry", "derive_version", "diff_versions"]


@dataclass(frozen=True)
class DiffEntry:
    """One difference between two versions."""

    path: str  # e.g. "Length" or "Pins[2].InOut"
    kind: str  # 'attribute' | 'size'
    old: Any
    new: Any

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.path}: {self.old!r} -> {self.new!r}"


def derive_version(
    graph: VersionGraph,
    base: DBObject,
    database=None,
    state: str = VersionState.IN_DESIGN,
) -> DBObject:
    """Create and register a new version derived from ``base``.

    The new version is a deep copy of the base's *visible* data (inherited
    values are materialised, exactly like a designer's working copy) and
    starts in ``state``.  The copy is intentionally **unbound**: a derived
    implementation binds to its interface explicitly, which keeps the
    derive step mechanism-free.
    """
    new_version = clone_object(base, database=database or base.database)
    graph.derive(base, new_version, state=state)
    return new_version


def diff_versions(
    old: DBObject,
    new: DBObject,
    include_inherited: bool = True,
) -> List[DiffEntry]:
    """Structural differences between two versions of one design object.

    Compares every visible attribute (optionally skipping inherited ones)
    and every subclass: size changes are reported as ``size`` entries,
    index-paired members are compared recursively.
    """
    entries: List[DiffEntry] = []
    _diff_into(old, new, "", include_inherited, entries)
    return entries


def _diff_into(
    old: DBObject,
    new: DBObject,
    prefix: str,
    include_inherited: bool,
    entries: List[DiffEntry],
) -> None:
    attribute_names = set(old.object_type.effective_attributes()) | set(
        new.object_type.effective_attributes()
    )
    for name in sorted(attribute_names):
        if not include_inherited and (
            old.is_member_inherited(name) or new.is_member_inherited(name)
        ):
            continue
        old_value = old.get(name)
        new_value = new.get(name)
        if old_value != new_value:
            entries.append(DiffEntry(f"{prefix}{name}", "attribute", old_value, new_value))

    subclass_names = set(old.subclass_names()) | set(new.subclass_names())
    for name in sorted(subclass_names):
        old_members = _members_or_empty(old, name)
        new_members = _members_or_empty(new, name)
        if len(old_members) != len(new_members):
            entries.append(
                DiffEntry(
                    f"{prefix}{name}", "size", len(old_members), len(new_members)
                )
            )
        for index, (old_member, new_member) in enumerate(
            zip(old_members, new_members)
        ):
            _diff_into(
                old_member,
                new_member,
                f"{prefix}{name}[{index}].",
                include_inherited,
                entries,
            )


def _members_or_empty(obj: DBObject, name: str) -> List[DBObject]:
    if name not in obj.subclass_names():
        return []
    if obj.is_member_inherited(name):
        return list(obj.get_member(name))
    return obj.subclass(name).members()
