"""Core data model: surrogates, domains, types, objects, inheritance.

This package implements §3 and §4 of the paper — the object model proper.
The public names are re-exported from :mod:`repro` for application use.
"""

from .surrogate import Surrogate, SurrogateGenerator
from .attributes import AttributeSpec
from .constraints import (
    CallableConstraint,
    Constraint,
    ExprConstraint,
    as_constraints,
    check_all,
)
from .objtype import ObjectType, SubclassSpec, SubrelSpec, TypeBase
from .reltype import ParticipantSpec, RelationshipType
from .inheritance import (
    INHERITOR_ROLE,
    TRANSMITTER_ROLE,
    InheritanceRelationshipType,
)
from .resolution import (
    MemberEntry,
    ResolutionPlan,
    plan_for,
    resolution_stats,
    schema_epoch,
)
from .objects import (
    DBObject,
    InheritanceLink,
    LocalRelClass,
    LocalSubclass,
    RelationshipObject,
    bind,
    new_object,
    new_relationship,
)
from .domains import (
    ANY,
    BOOLEAN,
    CHAR,
    INTEGER,
    IO,
    POINT,
    REAL,
    STRING,
    AnyDomain,
    BooleanDomain,
    CharDomain,
    Domain,
    EnumDomain,
    IntegerDomain,
    ListOf,
    MatrixOf,
    RealDomain,
    RecordDomain,
    RecordValue,
    SetOf,
    StringDomain,
)

__all__ = [
    "Surrogate",
    "SurrogateGenerator",
    "AttributeSpec",
    "CallableConstraint",
    "Constraint",
    "ExprConstraint",
    "as_constraints",
    "check_all",
    "ObjectType",
    "SubclassSpec",
    "SubrelSpec",
    "TypeBase",
    "ParticipantSpec",
    "RelationshipType",
    "INHERITOR_ROLE",
    "TRANSMITTER_ROLE",
    "InheritanceRelationshipType",
    "DBObject",
    "InheritanceLink",
    "LocalRelClass",
    "LocalSubclass",
    "RelationshipObject",
    "bind",
    "new_object",
    "new_relationship",
    "MemberEntry",
    "ResolutionPlan",
    "plan_for",
    "resolution_stats",
    "schema_epoch",
    "ANY",
    "BOOLEAN",
    "CHAR",
    "INTEGER",
    "IO",
    "POINT",
    "REAL",
    "STRING",
    "AnyDomain",
    "BooleanDomain",
    "CharDomain",
    "Domain",
    "EnumDomain",
    "IntegerDomain",
    "ListOf",
    "MatrixOf",
    "RealDomain",
    "RecordDomain",
    "RecordValue",
    "SetOf",
    "StringDomain",
]
