"""Event-bus telemetry: counters per event kind plus a post-mortem ring.

The :class:`EventTap` makes exactly **one** wildcard subscription on the
database's :class:`~repro.engine.events.EventBus` (so ``observe=False``
databases have zero observability subscriptions, and enabling it adds one).
Every event increments ``events.<kind>``; the kinds that drive the paper's
update-propagation story get richer treatment:

* ``attribute_updated`` — measures the transitive fan-out of the update
  through permeable inheritance links (``propagation.fanout`` histogram,
  ``propagation.fanout_total``, per-relationship-type counters
  ``propagation.by_rel_type.<name>``);
* ``inheritor_bound`` / ``inheritor_unbound`` — per-relationship-type
  binding churn (``inheritance.bound.<name>`` / ``inheritance.unbound.<name>``).

The last ``ring_size`` events are kept in a ring buffer for post-mortem
inspection (:meth:`EventTap.recent`).

When an :class:`~repro.obs.provenance.AuditLog` is wired in (``audit``),
the tap also forwards every event to it — **through the same single
subscription** — and, while measuring propagation, appends one batched
``propagation.fanout`` record per measured update carrying every
``(link, inheritor, depth)`` arrival, causally linked to the update.  The
batch reuses the tuples the depth walk already yields (one list append
per inheritor — no per-inheritor record allocation, which is what keeps
the audit tax within the E16 budget), and is what lets a
:class:`~repro.obs.provenance.PropagationCone` be reconstructed per root
mutation.
"""

from __future__ import annotations

from collections import deque
from time import perf_counter
from typing import Deque, List, Optional

from ..core.inheritance import iter_propagation, iter_propagation_depths
from ..engine.events import Event, EventBus
from .metrics import FANOUT_BUCKETS, MetricsRegistry

__all__ = ["EventTap"]


class EventTap:
    """One subscription turning bus traffic into metrics and a ring buffer."""

    def __init__(
        self,
        bus: EventBus,
        metrics: MetricsRegistry,
        ring_size: int = 256,
        track_propagation: bool = True,
        audit=None,
        slowlog=None,
    ):
        self.bus = bus
        self.metrics = metrics
        self.track_propagation = track_propagation
        self.audit = audit
        self.slowlog = slowlog
        self.ring: Deque[Event] = deque(maxlen=ring_size)
        self._subscription = bus.subscribe(EventBus.WILDCARD, self._on_event)

    # -- handler -----------------------------------------------------------------

    def _on_event(self, event: Event) -> None:
        metrics = self.metrics
        metrics.counter(f"events.{event.kind}").inc()
        self.ring.append(event)
        audit = self.audit
        if audit is not None:
            audit.on_event(event)
        kind = event.kind
        if kind == "attribute_updated":
            metrics.counter("propagation.updates").inc()
            if self.track_propagation:
                self._measure_propagation(event)
        elif kind == "inheritor_bound":
            metrics.counter(
                f"inheritance.bound.{event.data['rel_type'].name}"
            ).inc()
        elif kind == "inheritor_unbound":
            metrics.counter(
                f"inheritance.unbound.{event.data['rel_type'].name}"
            ).inc()

    def _measure_propagation(self, event: Event) -> None:
        metrics = self.metrics
        audit = self.audit
        slowlog = self.slowlog
        started = perf_counter() if slowlog is not None else 0.0
        attribute = event.data["attribute"]
        fanout = 0
        reached = None
        if audit is not None:
            # The depth-annotated walk has the same membership/dedup as
            # iter_propagation (tested).  The arrivals are batched into
            # one causally linked record per update, storing the yielded
            # (link, inheritor, depth) tuples as-is: one list append per
            # inheritor on top of the measurement walk.
            reached = []
            append = reached.append
            for item in iter_propagation_depths(event.subject, attribute):
                fanout += 1
                metrics.counter(
                    f"propagation.by_rel_type.{item[0].rel_type.name}"
                ).inc()
                append(item)
            if reached:
                audit.event_child(
                    event,
                    "propagation.fanout",
                    subject=event.subject,
                    attribute=attribute,
                    reached=reached,
                )
        else:
            for link, _inheritor in iter_propagation(event.subject, attribute):
                fanout += 1
                metrics.counter(
                    f"propagation.by_rel_type.{link.rel_type.name}"
                ).inc()
        metrics.histogram("propagation.fanout", FANOUT_BUCKETS).observe(fanout)
        metrics.counter("propagation.fanout_total").inc(fanout)
        if fanout:
            metrics.counter("propagation.updates_with_inheritors").inc()
        if slowlog is not None:
            duration = perf_counter() - started
            if slowlog.exceeded("propagation", duration):
                # The cone summary is the diagnosis: how wide and (when the
                # audit walk annotated depths) how deep the update reached.
                slowlog.note(
                    "propagation",
                    duration,
                    subject=event.subject,
                    attribute=attribute,
                    fanout=fanout,
                    depth=max((item[2] for item in reached), default=0)
                    if reached is not None
                    else None,
                )

    # -- inspection --------------------------------------------------------------

    def recent(self, kind: Optional[str] = None) -> List[Event]:
        """The buffered events, oldest first, optionally filtered by kind."""
        if kind is None:
            return list(self.ring)
        return [event for event in self.ring if event.kind == kind]

    # -- lifecycle ---------------------------------------------------------------

    def detach(self) -> None:
        """Unsubscribe from the bus; the tap stops counting."""
        if self._subscription is not None:
            self.bus.unsubscribe(self._subscription)
            self._subscription = None

    def __repr__(self) -> str:
        attached = "attached" if self._subscription is not None else "detached"
        return f"<EventTap {attached} buffered={len(self.ring)}>"
