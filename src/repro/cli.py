"""Command-line interface.

::

    python -m repro schema FILE.ddl        # parse, report notes, pretty-print
    python -m repro check FILE.ddl [IMAGE] # schema + optional image: integrity
    python -m repro stats FILE.ddl IMAGE   # object/type statistics of an image
    python -m repro metrics FILE.ddl IMAGE # observability workout + registry dump
    python -m repro audit FILE.ddl IMAGE   # causal audit log (repro.audit/1)
    python -m repro explain-value FILE.ddl IMAGE OBJECT ATTR  # value provenance
    python -m repro docs FILE.ddl          # Markdown schema documentation
    python -m repro query FILE.ddl IMAGE "select * from X where ..."
    python -m repro paper [gate|steel]     # print the paper's schemas (normalised)
    python -m repro bench [--quick] [--compare]   # unified benchmark harness
    python -m repro profile [--hz N] COMMAND ...  # sampling profiler
    python -m repro slowlog FILE.ddl IMAGE        # slow-operation log
    python -m repro flight FILE.ddl IMAGE         # flight-recorder ring (repro.flight/1)
    python -m repro health FILE.ddl IMAGE         # health verdict (exit 0/1/2)
    python -m repro top FILE.ddl IMAGE            # live rates/health/contention view

``check`` and ``query`` accept ``--trace`` to run with tracing enabled and
print the span tree — with propagation-cone membership under it — to
stderr.  ``OBJECT`` selectors accept ``@space:N`` (a surrogate),
``Name[i]`` (the i-th member of class or type ``Name``), or a bare class /
type name when it holds exactly one object.  Exit status is 0 on success,
1 on schema/image errors, 2 on integrity or constraint violations.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter
from typing import List, Optional

from . import __version__
from .ddl import load_schema
from .ddl.paper import GATE_SCHEMA, STEEL_SCHEMA
from .ddl.unparse import unparse_catalog
from .engine import Database, load
from .engine.integrity import check_integrity
from .errors import ConstraintViolation, ReproError

__all__ = ["main"]


def _load_catalog(db: Database, path: str) -> List[str]:
    with open(path) as f:
        source = f.read()
    load_schema(source, db.catalog)
    return list(getattr(db.catalog, "ddl_notes", []))


def cmd_schema(args: argparse.Namespace) -> int:
    db = Database("cli")
    notes = _load_catalog(db, args.schema)
    for note in notes:
        print(f"note: {note}", file=sys.stderr)
    print(unparse_catalog(db.catalog), end="")
    return 0


def _print_trace(db: Database) -> None:
    from .obs.tracing import format_span_tree

    tree = format_span_tree(db.obs.tracer)
    if tree:
        print("trace:", file=sys.stderr)
        print(tree, file=sys.stderr)
    audit = db.obs.audit
    if audit is None:
        return
    cones = [cone for cone in audit.cones() if cone.breadth]
    if not cones:
        return
    print("propagation cones:", file=sys.stderr)
    for cone in cones:
        root = cone.root
        print(
            f"  trace #{cone.trace} {root.kind} {root.subject!r} "
            f"breadth={cone.breadth} depth={cone.depth}",
            file=sys.stderr,
        )
        for member in cone.members():
            print(f"    reached {member!r}", file=sys.stderr)


def _find_object(db: Database, selector: str):
    """Resolve an OBJECT selector: ``@space:N``, ``Name[i]``, or a bare
    class/type name holding exactly one object."""
    from .errors import UnknownTypeError

    selector = selector.strip()
    if selector.startswith("@"):
        for obj in db.objects():
            if str(obj.surrogate) == selector:
                return obj
        raise ReproError(f"no object with surrogate {selector}")

    name, index = selector, None
    if selector.endswith("]") and "[" in selector:
        name, _, rest = selector.partition("[")
        digits = rest[:-1]
        if not digits.isdigit():
            raise ReproError(f"bad selector {selector!r}: expected Name[i]")
        index = int(digits)

    pool = None
    try:
        pool = db.class_(name).members()
    except UnknownTypeError:
        try:
            pool = db.objects_of_type(name)
        except UnknownTypeError:
            raise ReproError(
                f"{name!r} names neither a class nor a type"
            ) from None
    if index is None:
        if len(pool) == 1:
            return pool[0]
        raise ReproError(
            f"{name!r} holds {len(pool)} object(s); "
            f"select one with {name}[i] or a @space:N surrogate"
        )
    if not 0 <= index < len(pool):
        raise ReproError(
            f"{selector!r} out of range: {name!r} holds {len(pool)} object(s)"
        )
    return pool[index]


def cmd_check(args: argparse.Namespace) -> int:
    from .analysis import diagnostics_from_violations, make, to_json

    db = Database("cli", observe=args.trace)
    notes = _load_catalog(db, args.schema)
    for note in notes:
        print(f"note: {note}", file=sys.stderr)
    if args.image:
        load(args.image, db)
        print(f"loaded {db.count()} objects from {args.image}")
    integrity = diagnostics_from_violations(check_integrity(db))
    for diagnostic in integrity:
        print(f"integrity: {diagnostic.render()}", file=sys.stderr)
    constraints = []
    for obj in db.objects():
        if obj.parent is None and not obj.deleted:
            try:
                obj.check_constraints(deep=True)
            except ConstraintViolation as exc:
                constraints.append(make("REP006", str(exc), subject=repr(obj)))
                print(f"constraint: {exc}", file=sys.stderr)
    if args.trace:
        _print_trace(db)
    if getattr(args, "json", False):
        print(json.dumps(to_json(integrity + constraints), indent=2))
    if integrity or constraints:
        print(
            f"FAILED: {len(integrity)} integrity violation(s), "
            f"{len(constraints)} constraint violation(s)"
        )
        return 2
    print("OK: schema loads, image consistent, all constraints hold")
    return 0


def _split_codes(values: Optional[List[str]]) -> Optional[List[str]]:
    if not values:
        return None
    codes = []
    for value in values:
        codes.extend(part.strip() for part in value.split(",") if part.strip())
    return codes or None


def cmd_lint(args: argparse.Namespace) -> int:
    from .analysis import (
        analyze,
        filter_diagnostics,
        render_text,
        run_query_rules,
        severity_rank,
        sort_diagnostics,
        to_json,
        to_sarif,
        verify_against_runtime,
    )

    if args.engine:
        return _lint_engine(args)
    if args.schema is None:
        print(
            "error: repro lint needs a schema file (or --engine)",
            file=sys.stderr,
        )
        return 1

    with open(args.schema) as f:
        source = f.read()

    if args.verify:
        report = verify_against_runtime(
            source, source_path=args.schema, strict=args.strict
        )
        print(report.render())
        return 0 if report.ok else 2

    select = _split_codes(args.select)
    ignore = _split_codes(args.ignore)
    queries = None
    if args.queries:
        with open(args.queries) as f:
            queries = [
                line.strip()
                for line in f
                if line.strip() and not line.strip().startswith("#")
            ]

    if args.image:
        # Live-database lint: catalog model + REP0xx integrity (+ REP5xx
        # with queries).  Source line numbers are not available here.
        db = Database("cli")
        load_schema(source, db.catalog)
        load(args.image, db)
        findings = analyze(db, queries=queries, select=select, ignore=ignore)
    else:
        findings = analyze(
            source, source_path=args.schema, select=select, ignore=ignore
        )
        if queries:
            db = Database("cli")
            load_schema(source, db.catalog)
            findings = sort_diagnostics(
                findings
                + filter_diagnostics(
                    run_query_rules(db, queries), select, ignore
                )
            )

    if args.format == "json":
        print(json.dumps(to_json(findings), indent=2))
    elif args.format == "sarif":
        print(json.dumps(to_sarif(findings), indent=2))
    else:
        print(render_text(findings))

    if args.fail_on != "never":
        threshold = severity_rank(args.fail_on)
        if any(severity_rank(d.severity) <= threshold for d in findings):
            return 2
    return 0


def _lint_engine(args: argparse.Namespace) -> int:
    """``repro lint --engine``: the REP6xx self-lint + lock-order pass."""
    from .analysis import (
        analyze_lock_order,
        filter_diagnostics,
        lint_engine,
        render_text,
        severity_rank,
        sort_diagnostics,
        to_json,
        to_sarif,
        verify_engine_invariants,
    )

    if args.verify:
        report = verify_engine_invariants()
        print(report.render())
        return 0 if report.ok else 2

    result = lint_engine(args.engine_root)
    lock_report = analyze_lock_order(args.engine_root)
    findings = sort_diagnostics(filter_diagnostics(
        result.diagnostics + lock_report.diagnostics(),
        _split_codes(args.select),
        _split_codes(args.ignore),
    ))

    if args.format == "json":
        print(json.dumps(to_json(findings), indent=2))
    elif args.format == "sarif":
        print(json.dumps(to_sarif(findings), indent=2))
    else:
        print(render_text(findings))
        print(
            f"engine lint: {result.files_scanned} files, "
            f"{len(lock_report.locks)} mutex(es), "
            f"{len(lock_report.cycles)} lock-order cycle(s), "
            f"{result.suppressed} pragma-suppressed",
            file=sys.stderr,
        )

    if args.fail_on != "never":
        threshold = severity_rank(args.fail_on)
        if any(severity_rank(d.severity) <= threshold for d in findings):
            return 2
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    db = Database("cli")
    _load_catalog(db, args.schema)
    load(args.image, db)
    by_type: Counter = Counter(obj.object_type.name for obj in db.objects())
    print(f"objects: {db.count()}")
    print(f"types in catalog: {len(db.catalog)}")
    for name, count in sorted(by_type.items(), key=lambda kv: (-kv[1], kv[0])):
        print(f"  {name}: {count}")
    for class_name, extent in sorted(db.classes().items()):
        print(f"class {class_name}: {len(extent)} member(s)")
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    from .query import run_query

    db = Database("cli", observe=args.trace)
    _load_catalog(db, args.schema)
    load(args.image, db)
    result = run_query(db, args.query, explain=args.explain)
    if args.explain:
        print(result.explain())
        print()
    print(" | ".join(result.columns))
    for row in result.rows:
        print(" | ".join(repr(value) for value in row))
    print(f"({len(result)} row(s))")
    if args.trace:
        _print_trace(db)
    return 0


def cmd_metrics(args: argparse.Namespace) -> int:
    from .obs.report import exercise, render_table, snapshot

    db = Database("cli", observe=True)
    _load_catalog(db, args.schema)
    load(args.image, db)
    if not args.no_exercise:
        exercise(db)
    if args.watch is not None:
        return _watch_loop(
            db,
            interval=args.watch,
            count=args.count,
            exercise_each=not args.no_exercise,
        )
    snap = snapshot(db, include_events=not args.no_events)
    if args.json:
        print(json.dumps(snap, indent=2))
    else:
        print(render_table(snap))
        if args.events:
            ring = db.obs.tap.recent()
            print()
            print(f"event ring ({len(ring)} buffered):")
            for event in ring:
                cause = f" <-#{event.cause}" if event.cause is not None else ""
                print(
                    f"  #{event.seq} trace={event.trace} {event.kind} "
                    f"{event.subject!r}{cause}"
                )
    return 0


def _watch_loop(
    db: Database,
    interval: float,
    count: Optional[int],
    exercise_each: bool,
    top: bool = False,
    limit: int = 20,
) -> int:
    """Tick the flight recorder every ``interval`` seconds and render.

    The shared loop behind ``repro metrics --watch`` and ``repro top``:
    one :meth:`~repro.obs.recorder.FlightRecorder.tick` per frame, the
    sample rendered through the recorder's own renderer.  ``top`` adds
    the health verdict and the lock table's contention snapshot and
    clears the screen between frames on a tty.  Runs until ``count``
    frames (None = until Ctrl-C).
    """
    import time as _time

    from .obs.recorder import render_sample
    from .obs.report import exercise

    recorder = db.obs.recorder
    recorder.tick()
    frames = 0
    try:
        while count is None or frames < count:
            _time.sleep(interval)
            if exercise_each:
                exercise(db)
            sample = recorder.tick()
            if top and sys.stdout.isatty():
                print("\x1b[2J\x1b[H", end="")
            if top:
                report = db.obs.health.evaluate()
                print(
                    f"repro top — db={db.name}  "
                    f"health={report.status.upper()}  "
                    f"interval={interval:g}s"
                )
                print()
            print(render_sample(sample, limit=limit))
            if top:
                firing = db.obs.health.evaluate().firing()
                if firing:
                    print("health:")
                    for result in firing:
                        print(
                            f"  [{result.status.upper()}] {result.name}: "
                            f"{result.reason}"
                        )
                manager = db.transactions
                if manager is not None:
                    snap = manager.lock_table.contention_snapshot()
                    print(
                        f"locks: {snap['granted']} granted on "
                        f"{snap['locked_objects']} object(s) by "
                        f"{snap['holding_transactions']} txn(s), "
                        f"{snap['waiting']} waiting"
                    )
                    for waiter, holder in snap["waits_for"]:
                        print(f"  txn {waiter} waits for txn {holder}")
            print()
            frames += 1
    except KeyboardInterrupt:
        pass
    return 0


def cmd_flight(args: argparse.Namespace) -> int:
    from .obs.recorder import render_sample
    from .obs.report import exercise

    db = Database("cli", observe=True)
    _load_catalog(db, args.schema)
    load(args.image, db)
    recorder = db.obs.recorder
    recorder.tick()
    for _ in range(args.ticks):
        if not args.no_exercise:
            exercise(db)
        recorder.tick()
    if args.json:
        print(json.dumps(recorder.snapshot(), indent=2))
        return 0
    print(
        f"flight recorder: {len(recorder)} sample(s) buffered "
        f"(capacity {recorder.capacity}, {recorder.ticks} tick(s) taken)"
    )
    latest = recorder.latest()
    if latest is not None:
        print(render_sample(latest, limit=args.limit))
    return 0


def cmd_health(args: argparse.Namespace) -> int:
    from .obs.report import exercise

    db = Database("cli", observe=True)
    _load_catalog(db, args.schema)
    load(args.image, db)
    recorder = db.obs.recorder
    recorder.tick()
    for _ in range(args.ticks):
        if not args.no_exercise:
            exercise(db)
        recorder.tick()
    report = db.obs.health.evaluate()
    if args.json:
        print(json.dumps(report.as_dict(), indent=2))
    else:
        print(report.render())
    return report.exit_code


def cmd_top(args: argparse.Namespace) -> int:
    db = Database("cli", observe=True)
    _load_catalog(db, args.schema)
    load(args.image, db)
    return _watch_loop(
        db,
        interval=args.interval,
        count=args.count,
        exercise_each=not args.no_exercise,
        top=True,
        limit=args.limit,
    )


def cmd_audit(args: argparse.Namespace) -> int:
    from .obs.export import audit_snapshot, render_audit_table
    from .obs.report import exercise

    db = Database("cli", observe=True)
    _load_catalog(db, args.schema)
    load(args.image, db)
    if not args.no_exercise:
        exercise(db)
    snap = audit_snapshot(
        db, kind=args.kind, subject=args.object, trace=args.trace_id
    )
    if args.json:
        print(json.dumps(snap, indent=2))
    else:
        print(render_audit_table(snap))
    return 0


def cmd_explain_value(args: argparse.Namespace) -> int:
    db = Database("cli")
    _load_catalog(db, args.schema)
    load(args.image, db)
    obj = _find_object(db, args.object)
    provenance = db.explain_value(obj, args.attribute)
    if args.json:
        print(json.dumps(provenance.as_dict(), indent=2))
    else:
        print(provenance.render())
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from .obs import bench as bench_harness

    def progress(line: str) -> None:
        print(line, file=sys.stderr)

    suites, unadapted = bench_harness.discover_suites(
        args.dir, quick=args.quick, only=args.only or None
    )
    for stem in unadapted:
        print(f"note: {stem} has no register() adapter, skipped", file=sys.stderr)
    if args.match:
        for suite in suites:
            suite.cases = [c for c in suite.cases if args.match in c.name]
        suites = [s for s in suites if s.cases]
    if args.list:
        for suite in suites:
            for case in suite.cases:
                print(f"{suite.group}::{case.name}")
        return 0
    if not suites:
        print("error: no benchmark suites matched", file=sys.stderr)
        return 1

    mode = "quick" if args.quick else "full"
    runner = bench_harness.Runner(repeats=args.repeats, quick=args.quick)
    results = runner.run(suites, progress=progress)

    exit_code = 0
    if args.compare is not None:
        prior_path = (
            args.compare
            if args.compare is not True
            else bench_harness.latest_snapshot(args.root)
        )
        prior = None
        if prior_path is None:
            print(
                f"compare: no prior BENCH_*.json under {args.root!r}; "
                "this run seeds the trajectory",
                file=sys.stderr,
            )
        else:
            try:
                prior = bench_harness.load_snapshot(prior_path)
            except (ValueError, OSError) as exc:
                # An empty or malformed baseline must not fail the run:
                # report it, skip the gate, and let this run re-seed.
                print(
                    f"compare: baseline {prior_path} is unusable ({exc}); "
                    "skipping the regression gate",
                    file=sys.stderr,
                )
        if prior is not None:
            threshold = args.threshold / 100.0
            current = bench_harness.make_snapshot(results, seq=0, mode=mode)
            comparison = bench_harness.compare_snapshots(
                prior, current, threshold=threshold
            )
            if not comparison.ok and args.confirm:
                # Repeat-to-confirm: re-measure only the suspects before
                # failing, so scheduler noise does not trip the gate.
                results = bench_harness.confirm_regressions(
                    comparison, suites, runner, results,
                    rounds=args.confirm, progress=progress,
                )
                current = bench_harness.make_snapshot(results, seq=0, mode=mode)
                comparison = bench_harness.compare_snapshots(
                    prior, current, threshold=threshold
                )
            prior_commit = prior.get("fingerprint", {}).get("commit")
            print(f"prior: {prior_path} (commit {prior_commit or 'unknown'})")
            print(comparison.render())
            if not comparison.ok and not args.warn_only:
                exit_code = 2

    if not args.no_emit:
        seq, path = bench_harness.next_snapshot_path(args.root)
        snap = bench_harness.make_snapshot(results, seq=seq, mode=mode, runner=runner)
        bench_harness.write_snapshot(path, snap)
        print(f"wrote {path} ({len(snap['results'])} case(s), {mode} mode)")
        if args.json:
            print(json.dumps(snap, indent=2, sort_keys=True))
    elif args.json:
        snap = bench_harness.make_snapshot(results, seq=0, mode=mode, runner=runner)
        print(json.dumps(snap, indent=2, sort_keys=True))
    return exit_code


def cmd_profile(args: argparse.Namespace) -> int:
    from .obs.profiler import SamplingProfiler

    command = list(args.profiled)
    if command and command[0] == "--":
        command = command[1:]
    if not command:
        print("error: repro profile needs a command to run", file=sys.stderr)
        return 1
    if command[0] == "profile":
        print("error: refusing to profile the profiler", file=sys.stderr)
        return 1
    profiled = build_parser().parse_args(command)
    profiler = SamplingProfiler(interval=1.0 / args.hz)
    profiler.start()
    try:
        code = profiled.func(profiled)
    finally:
        profiler.stop()
    print(profiler.render_top(limit=args.top), file=sys.stderr)
    collapsed = "\n".join(profiler.collapsed())
    if args.collapsed:
        with open(args.collapsed, "w") as f:
            f.write(collapsed + "\n")
        print(f"wrote collapsed stacks to {args.collapsed}", file=sys.stderr)
    else:
        print(collapsed)
    if args.out:
        with open(args.out, "w") as f:
            json.dump(profiler.as_dict(), f, indent=1)
        print(f"wrote {args.out} (repro.profile/1)", file=sys.stderr)
    return code


def cmd_race(args: argparse.Namespace) -> int:
    from .obs import race

    command = list(args.raced)
    if command and command[0] == "--":
        command = command[1:]
    if not command:
        print("error: repro race needs a command to run", file=sys.stderr)
        return 1
    if command[0] == "race":
        print("error: refusing to sanitize the sanitizer", file=sys.stderr)
        return 1
    raced = build_parser().parse_args(command)
    sanitizer = race.enable(stack_depth=args.stack_depth)
    try:
        code = raced.func(raced)
    finally:
        race.disable()
    if args.json:
        print(json.dumps(sanitizer.snapshot(), indent=2))
    else:
        print(sanitizer.render(), file=sys.stderr)
    if args.out:
        with open(args.out, "w") as f:
            json.dump(sanitizer.snapshot(), f, indent=1)
        print(f"wrote {args.out} (repro.race/1)", file=sys.stderr)
    if sanitizer.reports:
        return 2
    return code


def cmd_slowlog(args: argparse.Namespace) -> int:
    from .obs.report import exercise
    from .obs.slowlog import DEFAULT_BUDGETS
    from .query import run_query

    budgets = None
    if args.budget_ms is not None:
        budgets = {kind: args.budget_ms / 1000.0 for kind in DEFAULT_BUDGETS}
    db = Database("cli")
    db.enable_observability(tracing=False, slow_budgets=budgets)
    _load_catalog(db, args.schema)
    load(args.image, db)
    if args.query:
        run_query(db, args.query)
    elif not args.no_exercise:
        exercise(db)
    slowlog = db.obs.slowlog
    if args.json:
        print(json.dumps(slowlog.snapshot(args.kind, args.since), indent=2))
    else:
        print(slowlog.render(args.kind, args.since))
    return 0


def cmd_docs(args: argparse.Namespace) -> int:
    from .ddl.docgen import document_catalog

    db = Database("cli")
    _load_catalog(db, args.schema)
    print(document_catalog(db.catalog, title=args.title))
    return 0


def cmd_paper(args: argparse.Namespace) -> int:
    source = GATE_SCHEMA if args.which == "gate" else STEEL_SCHEMA
    if args.raw:
        print(source)
        return 0
    catalog = load_schema(source)
    print(unparse_catalog(catalog), end="")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Complex and composite objects for CAD/CAM databases "
        "(Wilkes/Klahold/Schlageter, ICDE 1989).",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_schema = sub.add_parser("schema", help="parse a DDL file and pretty-print it")
    p_schema.add_argument("schema", help="path to a .ddl schema file")
    p_schema.set_defaults(func=cmd_schema)

    p_check = sub.add_parser("check", help="validate a schema and optional image")
    p_check.add_argument("schema", help="path to a .ddl schema file")
    p_check.add_argument("image", nargs="?", help="optional JSON image to load")
    p_check.add_argument(
        "--trace", action="store_true", help="print a span tree to stderr"
    )
    p_check.add_argument(
        "--json",
        action="store_true",
        help="also emit the findings as repro.lint/1 JSON on stdout",
    )
    p_check.set_defaults(func=cmd_check)

    p_lint = sub.add_parser(
        "lint",
        help="static schema analysis: predict runtime failures before "
        "execution (REP1xx-REP5xx), or lint a live image (adds REP0xx)",
    )
    p_lint.add_argument(
        "schema",
        nargs="?",
        help="path to a .ddl schema file (omit with --engine)",
    )
    p_lint.add_argument(
        "image",
        nargs="?",
        help="optional JSON image: lint the live database instead of the "
        "source (adds the REP0xx integrity diagnostics)",
    )
    p_lint.add_argument(
        "--select",
        action="append",
        metavar="CODES",
        help="only report these codes/prefixes (comma-separated; a prefix "
        "like REP2 selects all REP2xx)",
    )
    p_lint.add_argument(
        "--ignore",
        action="append",
        metavar="CODES",
        help="suppress these codes/prefixes (comma-separated)",
    )
    p_lint.add_argument(
        "--format",
        choices=["text", "json", "sarif"],
        default="text",
        help="output format (sarif emits SARIF 2.1.0)",
    )
    p_lint.add_argument(
        "--fail-on",
        choices=["error", "warning", "advice", "never"],
        default="error",
        help="exit 2 when a finding at or above this severity remains "
        "(default: error)",
    )
    p_lint.add_argument(
        "--queries",
        help="file of workload queries (one per line, # comments) for the "
        "REP5xx advisories",
    )
    p_lint.add_argument(
        "--verify",
        action="store_true",
        help="differential mode: cross-check the static predictions "
        "against the runtime oracles on a synthesized instance",
    )
    p_lint.add_argument(
        "--strict",
        action="store_true",
        help="with --verify: disable the REP100 safety net so only "
        "specific rules may predict build failures",
    )
    p_lint.add_argument(
        "--engine",
        action="store_true",
        help="lint the engine's own source instead of a schema: the "
        "REP6xx concurrency invariants plus the static lock-order "
        "analysis (with --verify: run the seeded-defect differential "
        "harness)",
    )
    p_lint.add_argument(
        "--engine-root",
        metavar="PATH",
        help="source tree to scan with --engine (default: the installed "
        "repro package)",
    )
    p_lint.set_defaults(func=cmd_lint)

    p_stats = sub.add_parser("stats", help="statistics of a database image")
    p_stats.add_argument("schema", help="path to a .ddl schema file")
    p_stats.add_argument("image", help="JSON image to inspect")
    p_stats.set_defaults(func=cmd_stats)

    p_query = sub.add_parser("query", help="run a select query against an image")
    p_query.add_argument("schema", help="path to a .ddl schema file")
    p_query.add_argument("image", help="JSON image to query")
    p_query.add_argument("query", help="select … from … where …")
    p_query.add_argument(
        "--trace", action="store_true", help="print a span tree to stderr"
    )
    p_query.add_argument(
        "--explain",
        action="store_true",
        help="print the chosen access plan (index vs scan, estimated vs "
        "actual rows) before the rows",
    )
    p_query.set_defaults(func=cmd_query)

    p_metrics = sub.add_parser(
        "metrics",
        help="load an image with observability on, run the standard "
        "workout, and dump the metrics registry",
    )
    p_metrics.add_argument("schema", help="path to a .ddl schema file")
    p_metrics.add_argument("image", help="JSON image to measure")
    p_metrics.add_argument(
        "--json", action="store_true", help="emit the repro.metrics/1 JSON"
    )
    p_metrics.add_argument(
        "--no-exercise",
        action="store_true",
        help="skip the workout; report only what loading produced",
    )
    p_metrics.add_argument(
        "--no-events", action="store_true", help="omit the event ring buffer"
    )
    p_metrics.add_argument(
        "--events",
        action="store_true",
        help="also dump the full event ring (seq, kind, subject, cause)",
    )
    p_metrics.add_argument(
        "--watch",
        type=float,
        metavar="SECONDS",
        help="interval mode: tick the flight recorder every SECONDS and "
        "render per-second rates instead of the one-shot dump",
    )
    p_metrics.add_argument(
        "--count",
        type=int,
        metavar="N",
        help="with --watch: stop after N frames (default: until Ctrl-C)",
    )
    p_metrics.set_defaults(func=cmd_metrics)

    p_audit = sub.add_parser(
        "audit",
        help="load an image with observability on, run the standard "
        "workout, and dump the causal audit log (repro.audit/1)",
    )
    p_audit.add_argument("schema", help="path to a .ddl schema file")
    p_audit.add_argument("image", help="JSON image to audit")
    p_audit.add_argument(
        "--json", action="store_true", help="emit the repro.audit/1 JSON"
    )
    p_audit.add_argument(
        "--kind", help="only records of this kind (e.g. attribute_updated)"
    )
    p_audit.add_argument(
        "--object",
        help="only records whose subject's repr contains this substring",
    )
    p_audit.add_argument(
        "--trace-id", type=int, help="only records of this causal trace"
    )
    p_audit.add_argument(
        "--no-exercise",
        action="store_true",
        help="skip the workout; report only what loading produced",
    )
    p_audit.set_defaults(func=cmd_audit)

    p_explain = sub.add_parser(
        "explain-value",
        help="show where an attribute's value comes from: holder object, "
        "inheritance path, permeability decisions, epochs, indexes",
    )
    p_explain.add_argument("schema", help="path to a .ddl schema file")
    p_explain.add_argument("image", help="JSON image to load")
    p_explain.add_argument(
        "object", help="object selector: @space:N, Name[i], or a unique name"
    )
    p_explain.add_argument("attribute", help="member name to explain")
    p_explain.add_argument(
        "--json", action="store_true", help="emit the provenance as JSON"
    )
    p_explain.set_defaults(func=cmd_explain_value)

    p_docs = sub.add_parser("docs", help="generate Markdown schema documentation")
    p_docs.add_argument("schema", help="path to a .ddl schema file")
    p_docs.add_argument("--title", default="Schema reference")
    p_docs.set_defaults(func=cmd_docs)

    p_paper = sub.add_parser("paper", help="print the paper's built-in schemas")
    p_paper.add_argument("which", choices=["gate", "steel"])
    p_paper.add_argument(
        "--raw", action="store_true", help="print the verbatim listing text"
    )
    p_paper.set_defaults(func=cmd_paper)

    p_bench = sub.add_parser(
        "bench",
        help="run the benchmark suites through the unified harness and "
        "emit a BENCH_<seq>.json (repro.bench/1) snapshot",
    )
    p_bench.add_argument(
        "--quick",
        action="store_true",
        help="CI regime: fewer repeats, shorter calibration, smaller scales",
    )
    p_bench.add_argument(
        "--compare",
        nargs="?",
        const=True,
        default=None,
        metavar="SNAPSHOT",
        help="compare against a prior snapshot (default: the latest "
        "BENCH_*.json under --root) and exit 2 on confirmed regressions",
    )
    p_bench.add_argument(
        "--threshold",
        type=float,
        default=25.0,
        metavar="PCT",
        help="relative regression threshold in percent (default: 25)",
    )
    p_bench.add_argument(
        "--confirm",
        type=int,
        default=2,
        metavar="N",
        help="re-run suspected regressions up to N more times before "
        "failing (0 disables; default: 2)",
    )
    p_bench.add_argument(
        "--warn-only",
        action="store_true",
        help="report regressions but always exit 0 (advisory CI gate)",
    )
    p_bench.add_argument(
        "--only",
        action="append",
        metavar="TOKEN",
        help="only suites whose module stem contains TOKEN (repeatable; "
        "e.g. --only e14)",
    )
    p_bench.add_argument(
        "--match",
        metavar="SUBSTR",
        help="only cases whose name contains SUBSTR",
    )
    p_bench.add_argument(
        "--dir",
        default="benchmarks",
        help="directory of bench_*.py suites (default: benchmarks)",
    )
    p_bench.add_argument(
        "--root",
        default=".",
        help="where BENCH_*.json snapshots live (default: repo root '.')",
    )
    p_bench.add_argument(
        "--repeats", type=int, default=5, help="measurements per case (default: 5)"
    )
    p_bench.add_argument(
        "--no-emit",
        action="store_true",
        help="measure and compare without writing a new snapshot",
    )
    p_bench.add_argument(
        "--list", action="store_true", help="list discovered cases and exit"
    )
    p_bench.add_argument(
        "--json",
        action="store_true",
        help="also print the snapshot document on stdout",
    )
    p_bench.set_defaults(func=cmd_bench)

    p_profile = sub.add_parser(
        "profile",
        help="run another repro command under the sampling wall-clock "
        "profiler; collapsed stacks on stdout, hot-frame table on stderr",
    )
    p_profile.add_argument(
        "--hz",
        type=float,
        default=1000.0,
        help="sampling frequency (default: 1000)",
    )
    p_profile.add_argument(
        "--top",
        type=int,
        default=15,
        help="rows in the hot-frame table (default: 15)",
    )
    p_profile.add_argument(
        "--collapsed",
        metavar="PATH",
        help="write collapsed stacks here instead of stdout",
    )
    p_profile.add_argument(
        "--out",
        metavar="PATH",
        help="also write the full repro.profile/1 JSON document here",
    )
    p_profile.add_argument(
        "profiled",
        nargs=argparse.REMAINDER,
        metavar="COMMAND ...",
        help="the repro command line to profile, e.g. "
        "bench --quick --only e14",
    )
    p_profile.set_defaults(func=cmd_profile)

    p_race = sub.add_parser(
        "race",
        help="run another repro command under the lockset race sanitizer; "
        "race reports on stderr, exit 2 if any race was observed",
    )
    p_race.add_argument(
        "--stack-depth",
        type=int,
        default=12,
        help="frames to keep per access stack (default: 12)",
    )
    p_race.add_argument(
        "--json",
        action="store_true",
        help="print the repro.race/1 snapshot to stdout instead of the "
        "rendered report",
    )
    p_race.add_argument(
        "--out",
        metavar="PATH",
        help="also write the repro.race/1 JSON document here",
    )
    p_race.add_argument(
        "raced",
        nargs=argparse.REMAINDER,
        metavar="COMMAND ...",
        help="the repro command line to sanitize, e.g. "
        "bench --quick --only e21",
    )
    p_race.set_defaults(func=cmd_race)

    p_slowlog = sub.add_parser(
        "slowlog",
        help="load an image with the slow-operation log attached, run a "
        "query or the standard workout, and dump what blew its budget",
    )
    p_slowlog.add_argument("schema", help="path to a .ddl schema file")
    p_slowlog.add_argument("image", help="JSON image to load")
    p_slowlog.add_argument(
        "--query", help="run this query instead of the standard workout"
    )
    p_slowlog.add_argument(
        "--budget-ms",
        type=float,
        metavar="MS",
        help="override every per-kind latency budget with MS milliseconds",
    )
    p_slowlog.add_argument(
        "--no-exercise",
        action="store_true",
        help="skip the workout; report only what loading produced",
    )
    p_slowlog.add_argument(
        "--json", action="store_true", help="emit the repro.slowlog/1 JSON"
    )
    p_slowlog.add_argument(
        "--kind",
        help="only operations of this kind (query, propagation, "
        "expansion, txn)",
    )
    p_slowlog.add_argument(
        "--since",
        type=int,
        metavar="SEQ",
        help="only operations at or after this global sequence number "
        "(the #seq shared with repro audit records)",
    )
    p_slowlog.set_defaults(func=cmd_slowlog)

    p_flight = sub.add_parser(
        "flight",
        help="load an image with observability on, tick the flight "
        "recorder across workout rounds, and dump the sample ring "
        "(repro.flight/1)",
    )
    p_flight.add_argument("schema", help="path to a .ddl schema file")
    p_flight.add_argument("image", help="JSON image to observe")
    p_flight.add_argument(
        "--ticks",
        type=int,
        default=3,
        metavar="N",
        help="workout/tick rounds after the baseline sample (default: 3)",
    )
    p_flight.add_argument(
        "--no-exercise",
        action="store_true",
        help="skip the workout between ticks; samples show only loading",
    )
    p_flight.add_argument(
        "--limit",
        type=int,
        default=20,
        metavar="N",
        help="rate rows in the text rendering (default: 20)",
    )
    p_flight.add_argument(
        "--json", action="store_true", help="emit the repro.flight/1 JSON"
    )
    p_flight.set_defaults(func=cmd_flight)

    p_health = sub.add_parser(
        "health",
        help="evaluate the health rules over flight-recorder samples; "
        "exit 0 ok, 1 degraded, 2 critical",
    )
    p_health.add_argument("schema", help="path to a .ddl schema file")
    p_health.add_argument("image", help="JSON image to observe")
    p_health.add_argument(
        "--ticks",
        type=int,
        default=3,
        metavar="N",
        help="workout/tick rounds before evaluating (default: 3)",
    )
    p_health.add_argument(
        "--no-exercise",
        action="store_true",
        help="skip the workout between ticks",
    )
    p_health.add_argument(
        "--json", action="store_true", help="emit the repro.health/1 JSON"
    )
    p_health.set_defaults(func=cmd_health)

    p_top = sub.add_parser(
        "top",
        help="live terminal view: per-second rates, health verdict and "
        "lock contention, refreshed per interval",
    )
    p_top.add_argument("schema", help="path to a .ddl schema file")
    p_top.add_argument("image", help="JSON image to observe")
    p_top.add_argument(
        "--interval",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="refresh interval (default: 1.0)",
    )
    p_top.add_argument(
        "--count",
        type=int,
        metavar="N",
        help="stop after N frames (default: until Ctrl-C)",
    )
    p_top.add_argument(
        "--no-exercise",
        action="store_true",
        help="do not run the workout between frames (observe only)",
    )
    p_top.add_argument(
        "--limit",
        type=int,
        default=15,
        metavar="N",
        help="rate rows per frame (default: 15)",
    )
    p_top.set_defaults(func=cmd_top)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
