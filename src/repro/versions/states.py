"""Version states — classification "according to their degree of
correctness" (§6).

The state machine follows the design lifecycle the paper's version
references ([KSWi86], [Wilk87]) describe:

    IN_DESIGN → CONSISTENT → RELEASED → FROZEN

* IN_DESIGN   — freely updatable working version;
* CONSISTENT  — passed its constraints; still updatable (drops back to
  IN_DESIGN on update);
* RELEASED    — visible to other designers, immutable;
* FROZEN      — archived, immutable, cannot even be re-opened.

:class:`StateGuard` wires the rules into a database's event bus: an
attribute update on a released/frozen version is reverted and rejected.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional, Tuple

from ..core.objects import DBObject
from ..core.surrogate import Surrogate
from ..errors import VersionError

__all__ = ["VersionState", "can_transition", "StateGuard"]


class VersionState:
    """Version lifecycle states (string constants with ordering)."""

    IN_DESIGN = "in_design"
    CONSISTENT = "consistent"
    RELEASED = "released"
    FROZEN = "frozen"

    ALL: Tuple[str, ...] = (IN_DESIGN, CONSISTENT, RELEASED, FROZEN)

    #: Allowed transitions; an update of a CONSISTENT version implicitly
    #: drops it back to IN_DESIGN.
    TRANSITIONS: Dict[str, FrozenSet[str]] = {
        IN_DESIGN: frozenset([CONSISTENT]),
        CONSISTENT: frozenset([IN_DESIGN, RELEASED]),
        RELEASED: frozenset([FROZEN]),
        FROZEN: frozenset(),
    }

    #: States in which the version's data may still change.
    MUTABLE: FrozenSet[str] = frozenset([IN_DESIGN, CONSISTENT])


def can_transition(current: str, target: str) -> bool:
    """True when the lifecycle permits ``current`` → ``target``."""
    if current not in VersionState.TRANSITIONS:
        raise VersionError(f"unknown version state {current!r}")
    if target not in VersionState.TRANSITIONS:
        raise VersionError(f"unknown version state {target!r}")
    return target in VersionState.TRANSITIONS[current]


class StateGuard:
    """Enforces immutability of released/frozen versions on a database.

    The guard subscribes to ``attribute_updated`` events; when the subject
    is a guarded version in an immutable state the update is **reverted**
    (the old value is restored directly) and :class:`VersionError` raised
    to the updating caller.  Subobject additions to immutable versions are
    rejected the same way.
    """

    def __init__(self, database):
        self.database = database
        self._states: Dict[Surrogate, str] = {}
        self._suspended = False
        bus = database.events
        self._subscriptions = [
            bus.subscribe("attribute_updated", self._on_attribute_updated),
            bus.subscribe("subobject_added", self._on_subobject_added),
        ]

    def state_of(self, obj: DBObject) -> Optional[str]:
        """The guarded state of ``obj`` (None when unguarded)."""
        return self._states.get(obj.surrogate)

    def set_state(self, obj: DBObject, state: str) -> None:
        """Guard ``obj`` in ``state`` (validating the transition if any)."""
        current = self._states.get(obj.surrogate)
        if current is not None and current != state and not can_transition(current, state):
            raise VersionError(
                f"version state transition {current!r} -> {state!r} of "
                f"{obj!r} is not allowed"
            )
        if state not in VersionState.ALL:
            raise VersionError(f"unknown version state {state!r}")
        self._states[obj.surrogate] = state

    def release(self, obj: DBObject) -> None:
        """Shortcut: mark consistent then released."""
        current = self._states.get(obj.surrogate, VersionState.IN_DESIGN)
        if current == VersionState.IN_DESIGN:
            self.set_state(obj, VersionState.CONSISTENT)
        self.set_state(obj, VersionState.RELEASED)

    def freeze(self, obj: DBObject) -> None:
        if self._states.get(obj.surrogate) != VersionState.RELEASED:
            self.release(obj)
        self.set_state(obj, VersionState.FROZEN)

    def _guarded_root(self, obj: DBObject) -> Optional[DBObject]:
        """The nearest enclosing guarded object (subobjects count too)."""
        current: Optional[DBObject] = obj
        while current is not None:
            if current.surrogate in self._states:
                return current
            current = current.parent
        return None

    def _on_attribute_updated(self, event) -> None:
        if self._suspended:
            return
        guarded = self._guarded_root(event.subject)
        if guarded is None:
            return
        state = self._states[guarded.surrogate]
        if state in VersionState.MUTABLE:
            if state == VersionState.CONSISTENT:
                # An update invalidates the consistency classification.
                self._states[guarded.surrogate] = VersionState.IN_DESIGN
            return
        # Revert and reject.
        subject = event.subject
        if event.old is None:
            subject._attrs.pop(event.attribute, None)
        else:
            subject._attrs[event.attribute] = event.old
        subject._mutation_epoch += 1
        # Emit before raising: the exception skips any handler still
        # queued for the original event, including index maintenance.
        subject._emit("attribute_restored", attribute=event.attribute)
        raise VersionError(
            f"{guarded!r} is {state} and must not be updated; derive a new "
            f"version instead"
        )

    def _on_subobject_added(self, event) -> None:
        if self._suspended:
            return
        guarded = self._guarded_root(event.subject)
        if guarded is None:
            return
        state = self._states[guarded.surrogate]
        if state in VersionState.MUTABLE:
            if state == VersionState.CONSISTENT:
                self._states[guarded.surrogate] = VersionState.IN_DESIGN
            return
        member = event.member
        container = event.subject.subclass(event.subclass)
        container._members.pop(member.surrogate, None)
        raise VersionError(
            f"{guarded!r} is {state}; its structure must not change"
        )

    def suspended(self):
        """Context manager: temporarily disable guarding (for loaders)."""
        guard = self

        class _Suspend:
            def __enter__(self):
                guard._suspended = True

            def __exit__(self, *exc):
                guard._suspended = False
                return False

        return _Suspend()
